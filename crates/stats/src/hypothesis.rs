//! Hypothesis tests used to qualify strategy comparisons.
//!
//! - [`welch_t_test`]: two-sample t-test with unequal variances — is the
//!   difference between two strategies' gradient ensembles resolvable at
//!   the paper's 200-circuit budget?
//! - [`ks_test_uniform`] / [`ks_statistic`]: Kolmogorov–Smirnov goodness
//!   of fit, used by the test suite to validate the from-scratch samplers
//!   beyond moment checks.
//!
//! # Examples
//!
//! ```
//! use plateau_stats::welch_t_test;
//!
//! let a = [5.1, 4.9, 5.0, 5.2, 4.8, 5.0, 5.1, 4.9];
//! let b = [6.0, 6.2, 5.9, 6.1, 6.0, 5.8, 6.1, 6.2];
//! let t = welch_t_test(&a, &b).expect("enough samples");
//! assert!(t.p_value < 0.001); // clearly different means
//! ```

use crate::descriptive::{mean, variance};
use crate::regression::FitError;

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchTTest {
    /// The t statistic (positive when the first sample's mean is larger).
    pub t_statistic: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub degrees_of_freedom: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Welch's t-test for the difference of means of two independent samples
/// with (possibly) unequal variances.
///
/// # Errors
///
/// Returns [`FitError::TooFewPoints`] when either sample has fewer than
/// two values, and [`FitError::DegenerateX`] when both samples have zero
/// variance (the statistic is undefined).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<WelchTTest, FitError> {
    if a.len() < 2 || b.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let sa = va / na;
    let sb = vb / nb;
    let denom = (sa + sb).sqrt();
    if denom == 0.0 {
        return Err(FitError::DegenerateX);
    }
    let t = (ma - mb) / denom;
    let df = (sa + sb) * (sa + sb)
        / (sa * sa / (na - 1.0) + sb * sb / (nb - 1.0));
    let p = 2.0 * student_t_sf(t.abs(), df);
    Ok(WelchTTest {
        t_statistic: t,
        degrees_of_freedom: df,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Survival function of Student's t distribution, `P(T > t)` for `t ≥ 0`,
/// via the regularized incomplete beta function.
fn student_t_sf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    0.5 * incomplete_beta_regularized(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta `I_x(a, b)` by the Lentz continued
/// fraction (Numerical Recipes 6.4). Accurate to ~1e-10 for the moderate
/// parameters hypothesis tests need.
fn incomplete_beta_regularized(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b)
        + a * x.ln()
        + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (g = 7, n = 9
/// coefficients; ~15 significant digits).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i as f64) + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The Kolmogorov–Smirnov statistic `D = sup |F_empirical − F|` of a
/// sample against a CDF.
///
/// Returns `NaN` on an empty sample.
pub fn ks_statistic(sample: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    if sample.is_empty() {
        return f64::NAN;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ks input"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, x) in sorted.iter().enumerate() {
        let f = cdf(*x).clamp(0.0, 1.0);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Kolmogorov–Smirnov test of a sample against `U(low, high)`:
/// returns `(statistic, p_value)` using the asymptotic Kolmogorov
/// distribution (valid for `n ≳ 35`).
///
/// # Panics
///
/// Panics unless `low < high`.
pub fn ks_test_uniform(sample: &[f64], low: f64, high: f64) -> (f64, f64) {
    assert!(low < high, "uniform bounds must satisfy low < high");
    let d = ks_statistic(sample, |x| ((x - low) / (high - low)).clamp(0.0, 1.0));
    let n = sample.len() as f64;
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    // Asymptotic Kolmogorov survival: 2 Σ (−1)^{k−1} e^{−2k²λ²}.
    let mut p = 0.0;
    for k in 1..=100 {
        let term = 2.0 * (-1.0f64).powi(k - 1) * (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        p += term;
        if term.abs() < 1e-12 {
            break;
        }
    }
    (d, p.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Normal, Sampler, Uniform};
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_symmetry_and_bounds() {
        assert_eq!(incomplete_beta_regularized(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta_regularized(2.0, 3.0, 1.0), 1.0);
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for x in [0.2, 0.5, 0.8] {
            let lhs = incomplete_beta_regularized(2.5, 1.5, x);
            let rhs = 1.0 - incomplete_beta_regularized(1.5, 2.5, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10);
        }
        // I_x(1, 1) = x (uniform CDF).
        assert!((incomplete_beta_regularized(1.0, 1.0, 0.37) - 0.37).abs() < 1e-10);
    }

    #[test]
    fn t_sf_matches_known_quantiles() {
        // For df → large, t behaves like a standard normal:
        // P(T > 1.96) ≈ 0.025.
        let p = student_t_sf(1.96, 1000.0);
        assert!((p - 0.025).abs() < 0.002, "p = {p}");
        // df = 1 (Cauchy): P(T > 1) = 0.25 exactly.
        let p = student_t_sf(1.0, 1.0);
        assert!((p - 0.25).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Normal::new(0.0, 1.0).unwrap();
        let a = d.sample_n(&mut rng, 100);
        let b = d.sample_n(&mut rng, 100);
        let t = welch_t_test(&a, &b).unwrap();
        assert!(t.p_value > 0.05, "false positive: p = {}", t.p_value);
    }

    #[test]
    fn shifted_samples_are_significant() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Normal::new(0.0, 1.0).unwrap().sample_n(&mut rng, 200);
        let b = Normal::new(0.5, 1.0).unwrap().sample_n(&mut rng, 200);
        let t = welch_t_test(&a, &b).unwrap();
        assert!(t.p_value < 0.01, "missed shift: p = {}", t.p_value);
        assert!(t.t_statistic < 0.0, "sign should reflect mean ordering");
    }

    #[test]
    fn welch_handles_unequal_variances() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Normal::new(0.0, 0.1).unwrap().sample_n(&mut rng, 50);
        let b = Normal::new(0.0, 3.0).unwrap().sample_n(&mut rng, 500);
        let t = welch_t_test(&a, &b).unwrap();
        assert!(t.p_value > 0.01);
        assert!(t.degrees_of_freedom > 2.0);
    }

    #[test]
    fn welch_error_paths() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).is_err()); // zero variance
    }

    #[test]
    fn ks_accepts_true_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let sample = Uniform::new(0.0, 1.0).unwrap().sample_n(&mut rng, 500);
        let (d, p) = ks_test_uniform(&sample, 0.0, 1.0);
        assert!(d < 0.08, "D = {d}");
        assert!(p > 0.05, "p = {p}");
    }

    #[test]
    fn ks_rejects_normal_as_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let sample = Normal::new(0.5, 0.1).unwrap().sample_n(&mut rng, 500);
        let (_, p) = ks_test_uniform(&sample, 0.0, 1.0);
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn ks_statistic_exact_small_case() {
        // Single point at 0.5 vs U(0,1): D = 0.5.
        let d = ks_statistic(&[0.5], |x| x);
        assert!((d - 0.5).abs() < 1e-12);
        assert!(ks_statistic(&[], |x| x).is_nan());
    }

    #[test]
    fn box_muller_normal_passes_ks_against_normal_cdf() {
        // Validate the sampler shape (not just moments) with Φ via erf
        // approximated through the t-distribution at huge df… simpler:
        // use the probit-free check against the empirical uniformization
        // Φ(x) computed numerically from the error function series.
        fn phi(x: f64) -> f64 {
            // Abramowitz–Stegun 7.1.26-based erf approximation.
            let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
            let y = 1.0
                - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736)
                    * t
                    + 0.254829592)
                    * t
                    * (-x * x / 2.0).exp();
            if x >= 0.0 {
                0.5 + 0.5 * y
            } else {
                0.5 - 0.5 * y
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let sample = Normal::new(0.0, 1.0).unwrap().sample_n(&mut rng, 1000);
        let d = ks_statistic(&sample, phi);
        // Critical value at α = 0.01 for n = 1000 is ≈ 0.0515.
        assert!(d < 0.0515, "Box–Muller sample failed KS: D = {d}");
    }
}
