//! # plateau-stats
//!
//! Statistical substrate for the `plateau` barren-plateau reproduction:
//!
//! - [`dist`]: sampling distributions ([`Uniform`], [`Normal`], [`Gamma`],
//!   [`Beta`], [`Constant`]) implemented from scratch over `rand`'s bit
//!   stream — these feed every parameter-initialization strategy.
//! - [`descriptive`]: means, variances, quantiles, [`Summary`] — the paper's
//!   core measurement is the variance of gradients over circuit ensembles.
//! - [`regression`]: OLS line fits and exponential-decay fits — the paper's
//!   headline numbers are ratios of fitted `ln Var` slopes.
//! - [`bootstrap`]: percentile-bootstrap confidence intervals to qualify the
//!   200-circuit ensemble estimates.
//!
//! # Examples
//!
//! ```
//! use plateau_stats::{fit_exponential_decay, Normal, Sampler, variance};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! // A synthetic barren plateau: gradient samples whose spread halves
//! // with every extra qubit.
//! let mut rng = StdRng::seed_from_u64(0);
//! let qubits = [2.0, 4.0, 6.0, 8.0];
//! let mut vars = Vec::new();
//! for q in qubits {
//!     let sigma = (0.5f64).powf(q / 2.0);
//!     let gauss = Normal::new(0.0, sigma).expect("valid std");
//!     let grads = gauss.sample_n(&mut rng, 4000);
//!     vars.push(variance(&grads));
//! }
//! let fit = fit_exponential_decay(&qubits, &vars).expect("positive variances");
//! assert!((fit.rate_log2() + 1.0).abs() < 0.1); // loses ~1 bit per qubit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod descriptive;
pub mod dist;
pub mod hypothesis;
pub mod regression;

pub use bootstrap::{bootstrap_ci, BootstrapError, ConfidenceInterval};
pub use descriptive::{
    max, mean, median, min, population_variance, quantile, standard_error, std_dev, variance,
    Summary,
};
pub use dist::{Beta, Constant, Gamma, InvalidDistributionError, Normal, Sampler, Uniform};
pub use hypothesis::{ks_statistic, ks_test_uniform, welch_t_test, WelchTTest};
pub use regression::{
    decay_improvement_percent, fit_exponential_decay, fit_line, ExpDecayFit, FitError, LineFit,
};
