//! Descriptive statistics over `f64` slices.
//!
//! Variance is the workhorse of the whole reproduction: the paper's central
//! measurement is `Var[∂C/∂θ_last]` over ensembles of 200 random circuits.
//!
//! # Examples
//!
//! ```
//! use plateau_stats::{mean, variance};
//!
//! let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
//! assert_eq!(mean(&xs), 5.0);
//! assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
//! ```

/// Arithmetic mean. Returns `NaN` on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (Bessel-corrected, divisor `n − 1`), computed
/// with the numerically stable two-pass algorithm.
///
/// Returns `NaN` when fewer than two samples are given.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    ss / (xs.len() - 1) as f64
}

/// Population variance (divisor `n`). Returns `NaN` on an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean, `s / √n`.
pub fn standard_error(xs: &[f64]) -> f64 {
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Minimum value. Returns `NaN` on an empty slice; ignores NaN inputs only
/// in the sense of `f64::min` propagation.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, |a, b| if a.is_nan() { b } else { a.min(b) })
}

/// Maximum value. Returns `NaN` on an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, |a, b| if a.is_nan() { b } else { a.max(b) })
}

/// Median via sorting a copy. Returns `NaN` on an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile `q ∈ [0, 1]` (type-7, the numpy default).
///
/// Returns `NaN` on an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes all summary statistics in one pass over a copy of the data.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            variance: variance(xs),
            std_dev: std_dev(xs),
            min: min(xs),
            median: median(xs),
            max: max(xs),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} var={:.6e} std={:.6e} min={:.6e} med={:.6e} max={:.6e}",
            self.n, self.mean, self.variance, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Var of {1,2,3,4} = 5/3 (sample).
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 5.0 / 3.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_nan());
        assert!(variance(&[]).is_nan());
    }

    #[test]
    fn population_vs_sample_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((population_variance(&xs) - 1.25).abs() < 1e-12);
        assert!(population_variance(&xs) < variance(&xs));
    }

    #[test]
    fn variance_is_translation_invariant() {
        let xs = [1.0, 5.0, -3.0, 2.0, 0.5];
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1e6).collect();
        assert!((variance(&xs) - variance(&shifted)).abs() < 1e-4);
    }

    #[test]
    fn variance_of_constants_is_zero() {
        assert_eq!(variance(&[3.0; 10]), 0.0);
    }

    #[test]
    fn std_dev_and_sem() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((standard_error(&xs) - std_dev(&xs) / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_max_median() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 5.0);
        assert_eq!(median(&xs), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.25), 1.0);
        assert!((quantile(&xs, 0.1) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [1.0, 2.0, 3.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.variance - 1.0).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }
}
