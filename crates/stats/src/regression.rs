//! Ordinary least squares and exponential-decay fitting.
//!
//! The paper quantifies barren plateaus through the *decay rate* of gradient
//! variance: `Var[∂C] ≈ A·e^{b·q}` over qubit count `q`, so `ln Var` is fit
//! with a straight line and the slope `b` is the decay rate. Improvements
//! between initializers are ratios of these slopes.
//!
//! # Examples
//!
//! ```
//! use plateau_stats::fit_line;
//!
//! let xs = [0.0, 1.0, 2.0, 3.0];
//! let ys = [1.0, 3.0, 5.0, 7.0];
//! let fit = fit_line(&xs, &ys).expect("well-posed fit");
//! assert!((fit.slope - 2.0).abs() < 1e-12);
//! assert!((fit.intercept - 1.0).abs() < 1e-12);
//! assert!((fit.r_squared - 1.0).abs() < 1e-12);
//! ```

use std::error::Error;
use std::fmt;

/// Error returned when a regression problem is ill-posed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two data points were supplied.
    TooFewPoints,
    /// `xs` and `ys` have different lengths.
    LengthMismatch,
    /// All `x` values are identical, so the slope is undefined.
    DegenerateX,
    /// An input value was NaN or infinite (e.g. `ln` of a non-positive
    /// variance in [`fit_exponential_decay`]).
    NonFiniteInput,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            FitError::TooFewPoints => "at least two points are required",
            FitError::LengthMismatch => "x and y slices must have equal length",
            FitError::DegenerateX => "all x values are identical",
            FitError::NonFiniteInput => "input contains non-finite values",
        };
        f.write_str(msg)
    }
}

impl Error for FitError {}

/// Result of a straight-line least-squares fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Standard error of the slope estimate.
    pub slope_std_err: f64,
    /// Number of points used.
    pub n: usize,
}

impl LineFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by ordinary least squares.
///
/// # Errors
///
/// Returns [`FitError`] if fewer than two points are given, lengths differ,
/// inputs are non-finite, or all `x` coincide.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Result<LineFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    let n = xs.len();
    if n < 2 {
        return Err(FitError::TooFewPoints);
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(FitError::NonFiniteInput);
    }

    let nf = n as f64;
    let x_mean = xs.iter().sum::<f64>() / nf;
    let y_mean = ys.iter().sum::<f64>() / nf;

    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - x_mean;
        let dy = y - y_mean;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(FitError::DegenerateX);
    }

    let slope = sxy / sxx;
    let intercept = y_mean - slope * x_mean;

    // Residual sum of squares and derived statistics.
    let ss_res: f64 = xs
        .iter()
        .zip(ys.iter())
        .map(|(x, y)| {
            let r = y - (intercept + slope * x);
            r * r
        })
        .sum();
    let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
    let slope_std_err = if n > 2 {
        (ss_res / (nf - 2.0) / sxx).sqrt()
    } else {
        0.0
    };

    Ok(LineFit {
        slope,
        intercept,
        r_squared,
        slope_std_err,
        n,
    })
}

/// Result of fitting `y = amplitude · e^{rate·x}` through the log transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpDecayFit {
    /// Exponential rate `b` (negative for decay).
    pub rate: f64,
    /// Prefactor `A = e^{intercept}`.
    pub amplitude: f64,
    /// R² of the underlying log-linear fit.
    pub r_squared: f64,
    /// Standard error of the rate estimate.
    pub rate_std_err: f64,
}

impl ExpDecayFit {
    /// Evaluates the fitted exponential at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.amplitude * (self.rate * x).exp()
    }

    /// Base-2 rate: the number of bits `y` loses per unit of `x`.
    ///
    /// A variance that halves with every added qubit has `rate_log2 = -1`.
    pub fn rate_log2(&self) -> f64 {
        self.rate / std::f64::consts::LN_2
    }
}

/// Fits `y = A·e^{b·x}` to strictly positive data by linear regression on
/// `ln y`.
///
/// # Errors
///
/// Returns [`FitError::NonFiniteInput`] if any `y ≤ 0`, plus all
/// [`fit_line`] error conditions.
pub fn fit_exponential_decay(xs: &[f64], ys: &[f64]) -> Result<ExpDecayFit, FitError> {
    if ys.iter().any(|&y| y <= 0.0) {
        return Err(FitError::NonFiniteInput);
    }
    let log_ys: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let line = fit_line(xs, &log_ys)?;
    Ok(ExpDecayFit {
        rate: line.slope,
        amplitude: line.intercept.exp(),
        r_squared: line.r_squared,
        rate_std_err: line.slope_std_err,
    })
}

/// Relative improvement of decay rate `b_t` over a baseline `b_ref`,
/// expressed in percent: `(|b_ref| − |b_t|) / |b_ref| × 100`.
///
/// This is the statistic behind the paper's headline numbers (Xavier ≈62%,
/// He ≈32%, LeCun ≈28%, Orthogonal ≈26% improvement over random
/// initialization). Positive means `b_t` decays more slowly (shallower
/// plateau); negative means it decays faster than the baseline.
pub fn decay_improvement_percent(b_ref: f64, b_t: f64) -> f64 {
    (b_ref.abs() - b_t.abs()) / b_ref.abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| -0.5 * x + 2.0).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_std_err < 1e-10);
        assert!((fit.predict(10.0) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 3.0 * x + 1.0 + 0.1 * (x * 12.9898).sin())
            .collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn error_conditions() {
        assert_eq!(fit_line(&[1.0], &[1.0]).unwrap_err(), FitError::TooFewPoints);
        assert_eq!(
            fit_line(&[1.0, 2.0], &[1.0]).unwrap_err(),
            FitError::LengthMismatch
        );
        assert_eq!(
            fit_line(&[1.0, 1.0], &[1.0, 2.0]).unwrap_err(),
            FitError::DegenerateX
        );
        assert_eq!(
            fit_line(&[1.0, f64::NAN], &[1.0, 2.0]).unwrap_err(),
            FitError::NonFiniteInput
        );
        assert!(!FitError::DegenerateX.to_string().is_empty());
    }

    #[test]
    fn horizontal_line_has_unit_r_squared() {
        let fit = fit_line(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn exponential_decay_recovery() {
        // Var(q) = 0.5 · e^{-1.2 q}: canonical barren-plateau shape.
        let qs: [f64; 5] = [2.0, 4.0, 6.0, 8.0, 10.0];
        let vars: Vec<f64> = qs.iter().map(|q| 0.5 * (-1.2 * q).exp()).collect();
        let fit = fit_exponential_decay(&qs, &vars).unwrap();
        assert!((fit.rate + 1.2).abs() < 1e-10);
        assert!((fit.amplitude - 0.5).abs() < 1e-10);
        assert!((fit.predict(5.0) - 0.5 * (-6.0f64).exp()).abs() < 1e-12);
        assert!((fit.rate_log2() + 1.2 / std::f64::consts::LN_2).abs() < 1e-10);
    }

    #[test]
    fn exponential_rejects_nonpositive() {
        assert_eq!(
            fit_exponential_decay(&[1.0, 2.0], &[1.0, 0.0]).unwrap_err(),
            FitError::NonFiniteInput
        );
        assert_eq!(
            fit_exponential_decay(&[1.0, 2.0], &[1.0, -3.0]).unwrap_err(),
            FitError::NonFiniteInput
        );
    }

    #[test]
    fn improvement_percent_matches_paper_convention() {
        // Baseline decays at -1.0; method decays at -0.377 → 62.3% improvement.
        assert!((decay_improvement_percent(-1.0, -0.377) - 62.3).abs() < 1e-9);
        // Faster decay than baseline → negative improvement.
        assert!(decay_improvement_percent(-1.0, -1.5) < 0.0);
        // Equal rates → zero.
        assert_eq!(decay_improvement_percent(-2.0, 2.0), 0.0);
    }
}
