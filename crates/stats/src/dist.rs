//! Sampling distributions implemented from first principles.
//!
//! The initialization strategies of the paper need uniform, Gaussian
//! (Box–Muller), and — for the BeInit extension — beta-distributed samples
//! (via Marsaglia–Tsang gamma generation). Implementing these here keeps the
//! dependency surface to `rand`'s core uniform bit stream only and makes the
//! numerical provenance of every experiment auditable.
//!
//! # Examples
//!
//! ```
//! use plateau_stats::{Normal, Sampler};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let normal = Normal::new(0.0, 2.0).expect("valid std");
//! let xs: Vec<f64> = (0..10_000).map(|_| normal.sample(&mut rng)).collect();
//! let mean = xs.iter().sum::<f64>() / xs.len() as f64;
//! assert!(mean.abs() < 0.1);
//! ```

use plateau_rng::Rng;
use std::error::Error;
use std::fmt;

/// Error returned when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidDistributionError {
    what: &'static str,
}

impl InvalidDistributionError {
    fn new(what: &'static str) -> Self {
        InvalidDistributionError { what }
    }
}

impl fmt::Display for InvalidDistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl Error for InvalidDistributionError {}

/// A source of `f64` samples driven by any [`plateau_rng::Rng`].
///
/// Object-safe so that heterogeneous initializer configurations can hold a
/// `Box<dyn Sampler>`.
pub trait Sampler {
    /// Draws one sample.
    fn sample(&self, rng: &mut dyn plateau_rng::RngCore) -> f64;

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut dyn plateau_rng::RngCore, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Continuous uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `low >= high` or either bound is non-finite.
    pub fn new(low: f64, high: f64) -> Result<Self, InvalidDistributionError> {
        if !low.is_finite() || !high.is_finite() {
            return Err(InvalidDistributionError::new("uniform bounds must be finite"));
        }
        if low >= high {
            return Err(InvalidDistributionError::new("uniform requires low < high"));
        }
        Ok(Uniform { low, high })
    }

    /// Symmetric uniform on `[-limit, limit)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `limit` is not a positive finite number.
    pub fn symmetric(limit: f64) -> Result<Self, InvalidDistributionError> {
        if !(limit.is_finite() && limit > 0.0) {
            return Err(InvalidDistributionError::new(
                "symmetric uniform requires a positive finite limit",
            ));
        }
        Uniform::new(-limit, limit)
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Theoretical mean `(low + high) / 2`.
    pub fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    /// Theoretical variance `(high - low)² / 12`.
    pub fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }
}

impl Sampler for Uniform {
    fn sample(&self, rng: &mut dyn plateau_rng::RngCore) -> f64 {
        let u: f64 = rng.gen();
        self.low + u * (self.high - self.low)
    }
}

/// Gaussian distribution `N(mean, std²)` sampled with the Box–Muller
/// transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns an error if `std` is negative or either parameter is
    /// non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, InvalidDistributionError> {
        if !mean.is_finite() || !std.is_finite() {
            return Err(InvalidDistributionError::new("normal parameters must be finite"));
        }
        if std < 0.0 {
            return Err(InvalidDistributionError::new("normal std must be non-negative"));
        }
        Ok(Normal { mean, std })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, std: 1.0 }
    }

    /// Creates `N(mean, variance)` from a variance instead of a standard
    /// deviation — matches how the paper states the initializer formulas.
    ///
    /// # Errors
    ///
    /// Returns an error if `variance` is negative or non-finite.
    pub fn from_variance(mean: f64, variance: f64) -> Result<Self, InvalidDistributionError> {
        if !(variance.is_finite() && variance >= 0.0) {
            return Err(InvalidDistributionError::new(
                "normal variance must be non-negative and finite",
            ));
        }
        Normal::new(mean, variance.sqrt())
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        self.std * self.std
    }

    /// Draws one standard-normal variate via Box–Muller.
    fn standard_sample(rng: &mut dyn plateau_rng::RngCore) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Sampler for Normal {
    fn sample(&self, rng: &mut dyn plateau_rng::RngCore) -> f64 {
        self.mean + self.std * Normal::standard_sample(rng)
    }
}

/// Gamma distribution with shape `k` and scale `θ`, sampled with the
/// Marsaglia–Tsang squeeze method (with the standard boost for `k < 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are positive and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, InvalidDistributionError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(InvalidDistributionError::new("gamma shape must be positive"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(InvalidDistributionError::new("gamma scale must be positive"));
        }
        Ok(Gamma { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Theoretical mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Theoretical variance `kθ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn sample_standard(shape: f64, rng: &mut dyn plateau_rng::RngCore) -> f64 {
        if shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
            let u: f64 = 1.0 - rng.gen::<f64>();
            return Gamma::sample_standard(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard_sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = 1.0 - rng.gen::<f64>();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v3;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Sampler for Gamma {
    fn sample(&self, rng: &mut dyn plateau_rng::RngCore) -> f64 {
        self.scale * Gamma::sample_standard(self.shape, rng)
    }
}

/// Beta distribution `Beta(α, β)` on `[0, 1]`, sampled as
/// `X/(X+Y)` with `X ~ Gamma(α, 1)`, `Y ~ Gamma(β, 1)`.
///
/// Used by the BeInit extension baseline (Kulshrestha & Safro, IEEE QCE
/// 2022 — cited as related work §II-e of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates a beta distribution with the given shape parameters.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, InvalidDistributionError> {
        if !(alpha.is_finite() && alpha > 0.0 && beta.is_finite() && beta > 0.0) {
            return Err(InvalidDistributionError::new("beta parameters must be positive"));
        }
        Ok(Beta { alpha, beta })
    }

    /// Shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Theoretical mean `α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Theoretical variance `αβ / ((α+β)²(α+β+1))`.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }
}

impl Sampler for Beta {
    fn sample(&self, rng: &mut dyn plateau_rng::RngCore) -> f64 {
        let x = Gamma::sample_standard(self.alpha, rng);
        let y = Gamma::sample_standard(self.beta, rng);
        x / (x + y)
    }
}

/// A point mass: always returns `value`. Useful for zero-initialization
/// baselines and deterministic tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// Creates a point-mass distribution at `value`.
    pub fn new(value: f64) -> Self {
        Constant { value }
    }
}

impl Sampler for Constant {
    fn sample(&self, _rng: &mut dyn plateau_rng::RngCore) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, variance};
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    const N: usize = 60_000;

    fn draw<S: Sampler>(s: &S, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        s.sample_n(&mut rng, N)
    }

    #[test]
    fn uniform_moments() {
        let d = Uniform::new(-2.0, 3.0).unwrap();
        let xs = draw(&d, 1);
        assert!((mean(&xs) - d.mean()).abs() < 0.03);
        assert!((variance(&xs) - d.variance()).abs() < 0.05);
        assert!(xs.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn uniform_symmetric() {
        let d = Uniform::symmetric(1.5).unwrap();
        assert_eq!(d.low(), -1.5);
        assert_eq!(d.high(), 1.5);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn uniform_rejects_bad_bounds() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
        assert!(Uniform::symmetric(0.0).is_err());
        assert!(Uniform::symmetric(-1.0).is_err());
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(1.5, 0.7).unwrap();
        let xs = draw(&d, 2);
        assert!((mean(&xs) - 1.5).abs() < 0.02);
        assert!((variance(&xs) - 0.49).abs() < 0.02);
    }

    #[test]
    fn normal_from_variance() {
        let d = Normal::from_variance(0.0, 4.0).unwrap();
        assert_eq!(d.std(), 2.0);
        assert_eq!(d.variance(), 4.0);
        assert!(Normal::from_variance(0.0, -1.0).is_err());
    }

    #[test]
    fn normal_tail_fractions() {
        // ~68.3% within one sigma, ~95.4% within two.
        let d = Normal::standard();
        let xs = draw(&d, 3);
        let within1 = xs.iter().filter(|x| x.abs() < 1.0).count() as f64 / N as f64;
        let within2 = xs.iter().filter(|x| x.abs() < 2.0).count() as f64 / N as f64;
        assert!((within1 - 0.6827).abs() < 0.01, "one-sigma fraction {within1}");
        assert!((within2 - 0.9545).abs() < 0.01, "two-sigma fraction {within2}");
    }

    #[test]
    fn normal_rejects_negative_std() {
        assert!(Normal::new(0.0, -0.1).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let d = Gamma::new(3.0, 2.0).unwrap();
        let xs = draw(&d, 4);
        assert!((mean(&xs) - d.mean()).abs() < 0.1);
        assert!((variance(&xs) - d.variance()).abs() < 0.5);
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let d = Gamma::new(0.5, 1.0).unwrap();
        let xs = draw(&d, 5);
        assert!((mean(&xs) - 0.5).abs() < 0.02);
        assert!((variance(&xs) - 0.5).abs() < 0.05);
    }

    #[test]
    fn gamma_rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn beta_moments() {
        let d = Beta::new(2.0, 5.0).unwrap();
        let xs = draw(&d, 6);
        assert!((mean(&xs) - d.mean()).abs() < 0.01);
        assert!((variance(&xs) - d.variance()).abs() < 0.01);
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn beta_symmetric_case() {
        let d = Beta::new(2.0, 2.0).unwrap();
        let xs = draw(&d, 7);
        assert!((mean(&xs) - 0.5).abs() < 0.01);
    }

    #[test]
    fn beta_rejects_bad_params() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn constant_is_deterministic() {
        let d = Constant::new(0.25);
        let xs = draw(&d, 8);
        assert!(xs.iter().all(|&x| x == 0.25));
    }

    #[test]
    fn sampling_is_reproducible_with_same_seed() {
        let d = Normal::standard();
        let a = draw(&d, 99);
        let b = draw(&d, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn error_display_is_informative() {
        let e = Uniform::new(2.0, 1.0).unwrap_err();
        assert!(e.to_string().contains("low < high"));
    }
}
