//! Bootstrap resampling for confidence intervals.
//!
//! With only 200 circuits per ensemble (the paper's sample size), point
//! estimates of gradient variance carry real sampling error; the
//! EXPERIMENTS.md report uses percentile-bootstrap intervals to show which
//! initializer differences are resolvable at that budget.
//!
//! # Examples
//!
//! ```
//! use plateau_stats::{bootstrap_ci, variance};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let data: Vec<f64> = (0..200).map(|i| ((i * 37 % 101) as f64) / 101.0).collect();
//! let mut rng = StdRng::seed_from_u64(1);
//! let ci = bootstrap_ci(&data, variance, 500, 0.95, &mut rng).expect("valid inputs");
//! assert!(ci.low <= ci.estimate && ci.estimate <= ci.high);
//! ```

use crate::descriptive::quantile;
use plateau_rng::Rng;
use std::error::Error;
use std::fmt;

/// Error returned when bootstrap inputs are ill-posed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootstrapError {
    /// The data slice was empty.
    EmptyData,
    /// Zero resamples were requested.
    NoResamples,
    /// Confidence level outside `(0, 1)`.
    BadConfidence,
}

impl fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            BootstrapError::EmptyData => "bootstrap requires non-empty data",
            BootstrapError::NoResamples => "bootstrap requires at least one resample",
            BootstrapError::BadConfidence => "confidence level must lie in (0, 1)",
        };
        f.write_str(msg)
    }
}

impl Error for BootstrapError {}

/// A percentile-bootstrap confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Statistic evaluated on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub low: f64,
    /// Upper percentile bound.
    pub high: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.high - self.low)
    }

    /// `true` when `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        (self.low..=self.high).contains(&value)
    }
}

/// Computes a percentile-bootstrap confidence interval for `statistic` on
/// `data` using `resamples` with-replacement resamples.
///
/// # Errors
///
/// Returns [`BootstrapError`] when `data` is empty, `resamples == 0`, or
/// `level ∉ (0, 1)`.
pub fn bootstrap_ci<R: Rng + ?Sized>(
    data: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> Result<ConfidenceInterval, BootstrapError> {
    if data.is_empty() {
        return Err(BootstrapError::EmptyData);
    }
    if resamples == 0 {
        return Err(BootstrapError::NoResamples);
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(BootstrapError::BadConfidence);
    }

    let estimate = statistic(data);
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        stats.push(statistic(&resample));
    }
    let alpha = 1.0 - level;
    Ok(ConfidenceInterval {
        estimate,
        low: quantile(&stats, alpha / 2.0),
        high: quantile(&stats, 1.0 - alpha / 2.0),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, variance};
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    fn sample_data(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7919 % 1000) as f64) / 1000.0).collect()
    }

    #[test]
    fn ci_brackets_the_mean() {
        let data = sample_data(300);
        let mut rng = StdRng::seed_from_u64(11);
        let ci = bootstrap_ci(&data, mean, 1000, 0.95, &mut rng).unwrap();
        assert!(ci.contains(mean(&data)));
        assert!(ci.half_width() > 0.0);
        assert!(ci.half_width() < 0.1);
    }

    #[test]
    fn ci_brackets_the_variance() {
        let data = sample_data(200);
        let mut rng = StdRng::seed_from_u64(12);
        let ci = bootstrap_ci(&data, variance, 1000, 0.90, &mut rng).unwrap();
        assert!(ci.low <= ci.estimate && ci.estimate <= ci.high);
        assert_eq!(ci.level, 0.90);
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let data = sample_data(150);
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut rng_b = StdRng::seed_from_u64(13);
        let ci_99 = bootstrap_ci(&data, mean, 2000, 0.99, &mut rng_a).unwrap();
        let ci_80 = bootstrap_ci(&data, mean, 2000, 0.80, &mut rng_b).unwrap();
        assert!(ci_99.half_width() > ci_80.half_width());
    }

    #[test]
    fn degenerate_data_gives_zero_width() {
        let data = vec![5.0; 50];
        let mut rng = StdRng::seed_from_u64(14);
        let ci = bootstrap_ci(&data, mean, 200, 0.95, &mut rng).unwrap();
        assert_eq!(ci.low, 5.0);
        assert_eq!(ci.high, 5.0);
    }

    #[test]
    fn error_conditions() {
        let mut rng = StdRng::seed_from_u64(15);
        assert_eq!(
            bootstrap_ci(&[], mean, 10, 0.95, &mut rng).unwrap_err(),
            BootstrapError::EmptyData
        );
        assert_eq!(
            bootstrap_ci(&[1.0], mean, 0, 0.95, &mut rng).unwrap_err(),
            BootstrapError::NoResamples
        );
        assert_eq!(
            bootstrap_ci(&[1.0], mean, 10, 1.0, &mut rng).unwrap_err(),
            BootstrapError::BadConfidence
        );
        assert!(!BootstrapError::EmptyData.to_string().is_empty());
    }

    #[test]
    fn reproducible_with_same_seed() {
        let data = sample_data(100);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ci_a = bootstrap_ci(&data, mean, 500, 0.95, &mut a).unwrap();
        let ci_b = bootstrap_ci(&data, mean, 500, 0.95, &mut b).unwrap();
        assert_eq!(ci_a, ci_b);
    }
}
