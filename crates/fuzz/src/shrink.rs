//! Greedy counterexample shrinking for [`FuzzCase`]s.
//!
//! Three reduction families, tried most-aggressive first:
//!
//! 1. **Drop gates** — remove one op (front to back). Because a
//!    [`FuzzCase`] keeps each angle inside its op, dropping can never
//!    misalign the parameter vector.
//! 2. **Merge qubits** — relabel the highest qubit onto each lower one
//!    and shrink the register; ops left with duplicate operands are
//!    dropped, observable Pauli strings lose their highest-qubit factor.
//! 3. **Zero parameters** — replace a nonzero angle with `0.0`,
//!    preserving the free/bound flag so gradient reproducers stay
//!    differentiable.
//!
//! The driver ([`shrink`]) accepts the first candidate that still fails
//! the caller's predicate and restarts, stopping at a local minimum. The
//! result is not globally minimal — greedy never is — but in practice a
//! kernel-level bug reduces to a handful of gates on a 1–2 qubit
//! register.

use crate::gen::{FuzzCase, ObsSpec};

/// Upper bound on accepted reductions, a safety net against a predicate
/// that flickers.
const MAX_STEPS: usize = 1_000;

/// Relabels the top qubit of `case` onto `target`, compacting the
/// register by one. Returns `None` when the case has a single qubit.
fn merge_top_qubit(case: &FuzzCase, target: usize) -> Option<FuzzCase> {
    let top = case.n_qubits.checked_sub(1).filter(|&t| t > 0)?;
    debug_assert!(target < top);
    let ops = case
        .ops
        .iter()
        .filter_map(|op| op.map_qubits(|q| if q == top { target } else { q }))
        .collect();
    let obs = match &case.obs {
        ObsSpec::PauliSum(terms) => ObsSpec::PauliSum(
            terms
                .iter()
                // Leftmost char is the highest qubit (ket order): drop it.
                .map(|(c, s)| (*c, s.chars().skip(1).collect()))
                .collect(),
        ),
        other => other.clone(),
    };
    Some(FuzzCase {
        n_qubits: top,
        ops,
        obs,
    })
}

/// All one-step reductions of `case`, most aggressive first.
pub fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // 1. Drop each op.
    for i in 0..case.ops.len() {
        let mut ops = case.ops.clone();
        ops.remove(i);
        out.push(FuzzCase {
            n_qubits: case.n_qubits,
            ops,
            obs: case.obs.clone(),
        });
    }
    // 2. Merge the top qubit down.
    for target in 0..case.n_qubits.saturating_sub(1) {
        if let Some(merged) = merge_top_qubit(case, target) {
            out.push(merged);
        }
    }
    // 3. Zero each nonzero angle.
    for i in 0..case.ops.len() {
        use crate::gen::GenOp;
        let mut ops = case.ops.clone();
        let zeroed = match &mut ops[i] {
            GenOp::Fixed { .. } => false,
            GenOp::Rotation { angle, .. }
            | GenOp::Controlled { angle, .. }
            | GenOp::TwoQubit { angle, .. } => {
                if *angle == 0.0 {
                    false
                } else {
                    *angle = 0.0;
                    true
                }
            }
        };
        if zeroed {
            out.push(FuzzCase {
                n_qubits: case.n_qubits,
                ops,
                obs: case.obs.clone(),
            });
        }
    }
    out
}

/// Greedily minimizes a failing case. `still_fails` must return `true`
/// for `case` itself (the caller just observed the failure); the result
/// is the smallest case reachable by single reductions that still fails,
/// together with the number of accepted reductions.
pub fn shrink(case: &FuzzCase, mut still_fails: impl FnMut(&FuzzCase) -> bool) -> (FuzzCase, usize) {
    let mut current = case.clone();
    let mut steps = 0;
    'minimize: while steps < MAX_STEPS {
        for candidate in candidates(&current) {
            if still_fails(&candidate) {
                current = candidate;
                steps += 1;
                plateau_obs::counter!("fuzz.shrink.steps").inc();
                continue 'minimize;
            }
        }
        break;
    }
    (current, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_case, GenOp};
    use plateau_rng::{SeedableRng, StdRng};

    #[test]
    fn candidates_are_strictly_smaller_or_simpler() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..100 {
            let case = random_case(&mut rng, 8);
            for cand in candidates(&case) {
                let fewer_ops = cand.ops.len() < case.ops.len();
                let fewer_qubits = cand.n_qubits < case.n_qubits;
                let fewer_nonzero = nonzero_angles(&cand) < nonzero_angles(&case);
                assert!(
                    fewer_ops || fewer_qubits || fewer_nonzero,
                    "candidate not smaller: {cand:?}"
                );
                // Every candidate must still be executable.
                cand.build().expect("candidate builds");
                cand.observable().expect("candidate observable builds");
            }
        }
    }

    fn nonzero_angles(case: &crate::gen::FuzzCase) -> usize {
        case.ops
            .iter()
            .filter(|op| match op {
                GenOp::Fixed { .. } => false,
                GenOp::Rotation { angle, .. }
                | GenOp::Controlled { angle, .. }
                | GenOp::TwoQubit { angle, .. } => *angle != 0.0,
            })
            .count()
    }

    #[test]
    fn shrink_reaches_a_small_reproducer() {
        // Predicate: "contains at least one RX rotation" — stand-in for
        // a kernel bug triggered by any RX. The minimum is one op.
        let mut rng = StdRng::seed_from_u64(32);
        let mut shrunk_any = false;
        for _ in 0..50 {
            let case = random_case(&mut rng, 8);
            let has_rx = |c: &crate::gen::FuzzCase| {
                c.ops.iter().any(|op| {
                    matches!(
                        op,
                        GenOp::Rotation {
                            gate: plateau_sim::RotationGate::Rx,
                            ..
                        }
                    )
                })
            };
            if !has_rx(&case) {
                continue;
            }
            let (minimal, steps) = shrink(&case, has_rx);
            assert_eq!(minimal.ops.len(), 1, "minimal case: {minimal:?}");
            assert_eq!(minimal.n_qubits, 1);
            assert!(steps > 0);
            shrunk_any = true;
        }
        assert!(shrunk_any, "no generated case contained an RX");
    }
}
