//! # plateau-fuzz
//!
//! Differential fuzzing for the plateau workspace. The workspace
//! deliberately contains redundant implementations of the same quantum
//! math — serial and chunked-parallel amplitude kernels, a statevector
//! and a density-matrix engine, a dense full-unitary oracle, three
//! gradient algorithms, an optimizer pass, and a QASM codec. That
//! redundancy is an oracle: this crate generates random circuits,
//! observables, and parameter vectors ([`gen`]), executes each case
//! every way the workspace can ([`engines`]), and cross-checks the
//! results within per-pair tolerances. Any divergence is greedily
//! minimized ([`shrink()`]) and written as a replayable reproducer
//! ([`artifact`]) under `target/fuzz/`.
//!
//! Entry points ([`runner`]): [`run`] drives a seeded fuzz campaign,
//! [`replay`] re-executes a reproducer file. The `plateau fuzz` CLI
//! subcommand and the `scripts/ci.sh` smoke gate are thin wrappers over
//! these.
//!
//! The whole subsystem is seed-deterministic: the same
//! `(seed, cases, max_qubits)` triple explores the same cases and either
//! finds the same mismatches or none, on any machine.
//!
//! # Examples
//!
//! ```
//! use plateau_fuzz::{run, FuzzConfig};
//!
//! let report = run(&FuzzConfig {
//!     cases: 10,
//!     seed: 0xfeed,
//!     max_qubits: 4,
//!     artifact_dir: None,
//!     mutate: false,
//! });
//! assert!(report.clean());
//! assert!(report.comparisons() >= 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod engines;
pub mod gen;
pub mod runner;
pub mod shrink;

pub use artifact::{parse_seed, Artifact};
pub use engines::{check_pair, fused_mutated_run, mutated_run, EnginePair, Mismatch};
pub use gen::{random_case, FuzzCase, GenOp, ObsSpec, MAX_FUZZ_QUBITS, SMALL_ORACLE_QUBITS};
pub use runner::{replay, run, FoundMismatch, FuzzConfig, FuzzReport, PairStats, ReplayOutcome};
pub use shrink::{candidates, shrink};
