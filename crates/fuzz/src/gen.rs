//! Random-case generation for the differential fuzzer.
//!
//! A [`FuzzCase`] is the fuzzer's own circuit representation: a qubit
//! count, an op list where every parameterized gate carries its concrete
//! angle plus a free/bound flag, and an observable spec. Keeping the
//! angles inside the ops (instead of a detached parameter vector) makes
//! shrinking trivial — dropping an op or merging qubits can never
//! misalign parameter indices — and [`FuzzCase::build`] reconstructs the
//! `(Circuit, Vec<f64>)` pair the engines need, allocating free-parameter
//! slots in op order.

use plateau_rng::{Rng, StdRng};
use plateau_sim::{
    Circuit, FixedGate, Observable, PauliString, RotationGate, SimError, TwoQubitRotationGate,
};

/// Largest circuit the generator emits (the engine matrix stays cheap —
/// `2^8` amplitudes — while still exercising multi-block kernel paths).
pub const MAX_FUZZ_QUBITS: usize = 8;

/// Qubit count at or below which the `O(4^n)`/`O(8^n)` oracles (density
/// matrix, full unitary) join the engine matrix.
pub const SMALL_ORACLE_QUBITS: usize = 5;

/// Cap on trainable parameters per case, bounding the cost of the
/// parameter-shift and finite-difference sweeps.
pub const MAX_FREE_PARAMS: usize = 10;

/// One generated operation. Parameterized variants store the concrete
/// angle and whether the engines should see it as a trainable parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum GenOp {
    /// A parameter-free gate (arity 1 or 2).
    Fixed {
        /// The gate.
        gate: FixedGate,
        /// Operand qubits, `gate.arity()` of them.
        qubits: Vec<usize>,
    },
    /// A single-qubit rotation.
    Rotation {
        /// The rotation family.
        gate: RotationGate,
        /// Target qubit.
        qubit: usize,
        /// Concrete angle.
        angle: f64,
        /// Trainable (free parameter) vs baked-in constant.
        free: bool,
    },
    /// A controlled single-qubit rotation.
    Controlled {
        /// The rotation family.
        gate: RotationGate,
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Concrete angle.
        angle: f64,
        /// Trainable (free parameter) vs baked-in constant.
        free: bool,
    },
    /// A two-qubit Pauli-product rotation.
    TwoQubit {
        /// The rotation family.
        gate: TwoQubitRotationGate,
        /// First operand.
        first: usize,
        /// Second operand.
        second: usize,
        /// Concrete angle.
        angle: f64,
        /// Trainable (free parameter) vs baked-in constant.
        free: bool,
    },
}

impl GenOp {
    /// Whether this op consumes a free-parameter slot.
    pub fn is_free(&self) -> bool {
        matches!(
            self,
            GenOp::Rotation { free: true, .. }
                | GenOp::Controlled { free: true, .. }
                | GenOp::TwoQubit { free: true, .. }
        )
    }

    /// The operand qubits, in op order.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            GenOp::Fixed { qubits, .. } => qubits.clone(),
            GenOp::Rotation { qubit, .. } => vec![*qubit],
            GenOp::Controlled {
                control, target, ..
            } => vec![*control, *target],
            GenOp::TwoQubit { first, second, .. } => vec![*first, *second],
        }
    }

    /// Rewrites every operand through `map`. Returns `None` when the
    /// remapped op would act twice on the same qubit (the caller drops
    /// it — used by the qubit-merge shrink).
    pub fn map_qubits(&self, map: impl Fn(usize) -> usize) -> Option<GenOp> {
        let op = match self {
            GenOp::Fixed { gate, qubits } => GenOp::Fixed {
                gate: *gate,
                qubits: qubits.iter().map(|&q| map(q)).collect(),
            },
            GenOp::Rotation {
                gate,
                qubit,
                angle,
                free,
            } => GenOp::Rotation {
                gate: *gate,
                qubit: map(*qubit),
                angle: *angle,
                free: *free,
            },
            GenOp::Controlled {
                gate,
                control,
                target,
                angle,
                free,
            } => GenOp::Controlled {
                gate: *gate,
                control: map(*control),
                target: map(*target),
                angle: *angle,
                free: *free,
            },
            GenOp::TwoQubit {
                gate,
                first,
                second,
                angle,
                free,
            } => GenOp::TwoQubit {
                gate: *gate,
                first: map(*first),
                second: map(*second),
                angle: *angle,
                free: *free,
            },
        };
        let qs = op.qubits();
        if qs.len() == 2 && qs[0] == qs[1] {
            None
        } else {
            Some(op)
        }
    }
}

/// Observable specification, rebuilt against the case's qubit count.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsSpec {
    /// The paper's global cost `I − |0…0⟩⟨0…0|`.
    GlobalCost,
    /// The local cost of Cerezo et al.
    LocalCost,
    /// The bare projector `|0…0⟩⟨0…0|`.
    ZeroProjector,
    /// A weighted Pauli sum; strings are ket-ordered (leftmost char =
    /// highest qubit), each of length `n_qubits`.
    PauliSum(Vec<(f64, String)>),
}

impl ObsSpec {
    /// Canonical text form for artifacts: `global_cost`, `local_cost`,
    /// `zero_projector`, or `pauli:<coeff>*<string>;…`.
    pub fn render(&self) -> String {
        match self {
            ObsSpec::GlobalCost => "global_cost".into(),
            ObsSpec::LocalCost => "local_cost".into(),
            ObsSpec::ZeroProjector => "zero_projector".into(),
            ObsSpec::PauliSum(terms) => {
                let body: Vec<String> =
                    terms.iter().map(|(c, s)| format!("{c}*{s}")).collect();
                format!("pauli:{}", body.join(";"))
            }
        }
    }

    /// Parses the [`ObsSpec::render`] form.
    pub fn parse(s: &str) -> Result<ObsSpec, String> {
        match s {
            "global_cost" => Ok(ObsSpec::GlobalCost),
            "local_cost" => Ok(ObsSpec::LocalCost),
            "zero_projector" => Ok(ObsSpec::ZeroProjector),
            _ => {
                let body = s
                    .strip_prefix("pauli:")
                    .ok_or_else(|| format!("unknown observable spec {s:?}"))?;
                let mut terms = Vec::new();
                for term in body.split(';') {
                    let (coeff, string) = term
                        .split_once('*')
                        .ok_or_else(|| format!("bad pauli term {term:?}"))?;
                    let coeff: f64 = coeff
                        .parse()
                        .map_err(|_| format!("bad pauli coefficient {coeff:?}"))?;
                    terms.push((coeff, string.to_string()));
                }
                Ok(ObsSpec::PauliSum(terms))
            }
        }
    }
}

/// One complete fuzz case: circuit spec plus observable spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Qubit count of the circuit and observable.
    pub n_qubits: usize,
    /// The op list; see [`GenOp`].
    pub ops: Vec<GenOp>,
    /// The observable.
    pub obs: ObsSpec,
}

impl FuzzCase {
    /// Number of ops (the "size" the shrinker minimizes).
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of trainable parameters the built circuit will have.
    pub fn free_param_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_free()).count()
    }

    /// Reconstructs the executable form: a [`Circuit`] whose free
    /// parameters are allocated in op order, and the matching parameter
    /// vector.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors (a correctly generated or
    /// shrunk case never triggers them).
    pub fn build(&self) -> Result<(Circuit, Vec<f64>), SimError> {
        let mut c = Circuit::new(self.n_qubits)?;
        let mut params = Vec::new();
        for op in &self.ops {
            match op {
                GenOp::Fixed { gate, qubits } => {
                    c.push_fixed(*gate, qubits)?;
                }
                GenOp::Rotation {
                    gate,
                    qubit,
                    angle,
                    free,
                } => {
                    if *free {
                        c.push_rotation(*gate, *qubit)?;
                        params.push(*angle);
                    } else {
                        c.push_rotation_const(*gate, *qubit, *angle)?;
                    }
                }
                GenOp::Controlled {
                    gate,
                    control,
                    target,
                    angle,
                    free,
                } => {
                    c.push_controlled_rotation(*gate, *control, *target)?;
                    if *free {
                        params.push(*angle);
                    } else {
                        c.bind_last_param(*angle)?;
                    }
                }
                GenOp::TwoQubit {
                    gate,
                    first,
                    second,
                    angle,
                    free,
                } => {
                    c.push_two_qubit_rotation(*gate, *first, *second)?;
                    if *free {
                        params.push(*angle);
                    } else {
                        c.bind_last_param(*angle)?;
                    }
                }
            }
        }
        Ok((c, params))
    }

    /// Rebuilds the observable for this case's qubit count.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from malformed Pauli strings.
    pub fn observable(&self) -> Result<Observable, SimError> {
        match &self.obs {
            ObsSpec::GlobalCost => Ok(Observable::global_cost(self.n_qubits)),
            ObsSpec::LocalCost => Ok(Observable::local_cost(self.n_qubits)),
            ObsSpec::ZeroProjector => Ok(Observable::zero_projector(self.n_qubits)),
            ObsSpec::PauliSum(terms) => {
                let mut parsed = Vec::with_capacity(terms.len());
                for (coeff, s) in terms {
                    parsed.push((*coeff, PauliString::parse(s)?));
                }
                Observable::pauli_sum(parsed)
            }
        }
    }
}

/// All single-qubit fixed gates the generator draws from.
const FIXED_1Q: [FixedGate; 9] = [
    FixedGate::X,
    FixedGate::Y,
    FixedGate::Z,
    FixedGate::H,
    FixedGate::S,
    FixedGate::Sdg,
    FixedGate::T,
    FixedGate::Tdg,
    FixedGate::Sx,
];

/// All two-qubit fixed gates the generator draws from.
const FIXED_2Q: [FixedGate; 4] = [FixedGate::Cz, FixedGate::Cx, FixedGate::Cy, FixedGate::Swap];

/// All rotation families (also used for controlled rotations).
const ROTATIONS: [RotationGate; 4] = [
    RotationGate::Rx,
    RotationGate::Ry,
    RotationGate::Rz,
    RotationGate::Phase,
];

/// All two-qubit rotation families.
const TWO_ROTATIONS: [TwoQubitRotationGate; 3] = [
    TwoQubitRotationGate::Rxx,
    TwoQubitRotationGate::Ryy,
    TwoQubitRotationGate::Rzz,
];

fn random_pair(rng: &mut StdRng, n: usize) -> (usize, usize) {
    let a = rng.gen_range(0..n);
    let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
    (a, b)
}

/// One random op on an `n`-qubit register. `allow_free` gates whether a
/// parameterized draw may claim a trainable slot.
fn random_op(rng: &mut StdRng, n: usize, allow_free: bool) -> GenOp {
    let angle = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    let free = allow_free && rng.gen_bool(0.5);
    // Single-qubit-only register: restrict to the 1q families.
    let kind = if n == 1 {
        rng.gen_range(0..2usize)
    } else {
        rng.gen_range(0..5usize)
    };
    match kind {
        0 => GenOp::Fixed {
            gate: FIXED_1Q[rng.gen_range(0..FIXED_1Q.len())],
            qubits: vec![rng.gen_range(0..n)],
        },
        1 => GenOp::Rotation {
            gate: ROTATIONS[rng.gen_range(0..ROTATIONS.len())],
            qubit: rng.gen_range(0..n),
            angle,
            free,
        },
        2 => {
            let (a, b) = random_pair(rng, n);
            GenOp::Fixed {
                gate: FIXED_2Q[rng.gen_range(0..FIXED_2Q.len())],
                qubits: vec![a, b],
            }
        }
        3 => {
            let (control, target) = random_pair(rng, n);
            GenOp::Controlled {
                gate: ROTATIONS[rng.gen_range(0..ROTATIONS.len())],
                control,
                target,
                angle,
                free,
            }
        }
        _ => {
            let (first, second) = random_pair(rng, n);
            GenOp::TwoQubit {
                gate: TWO_ROTATIONS[rng.gen_range(0..TWO_ROTATIONS.len())],
                first,
                second,
                angle,
                free,
            }
        }
    }
}

fn random_obs(rng: &mut StdRng, n: usize) -> ObsSpec {
    match rng.gen_range(0..4usize) {
        0 => ObsSpec::GlobalCost,
        1 => ObsSpec::LocalCost,
        2 => ObsSpec::ZeroProjector,
        _ => {
            let n_terms = 1 + rng.gen_range(0..3usize);
            let terms = (0..n_terms)
                .map(|_| {
                    let coeff = rng.gen_range(-1.5..1.5);
                    let string: String = (0..n)
                        .map(|_| ['I', 'X', 'Y', 'Z'][rng.gen_range(0..4usize)])
                        .collect();
                    (coeff, string)
                })
                .collect();
            ObsSpec::PauliSum(terms)
        }
    }
}

/// Draws one random case: 1–`max_qubits` qubits, depth scaled to the
/// register size, a mixed free/bound parameterization capped at
/// [`MAX_FREE_PARAMS`] trainable angles, and a random observable.
pub fn random_case(rng: &mut StdRng, max_qubits: usize) -> FuzzCase {
    let max_qubits = max_qubits.clamp(1, MAX_FUZZ_QUBITS);
    let n_qubits = 1 + rng.gen_range(0..max_qubits);
    let n_ops = 1 + rng.gen_range(0..(3 * n_qubits + 8));
    let mut ops = Vec::with_capacity(n_ops);
    let mut free = 0;
    for _ in 0..n_ops {
        let op = random_op(rng, n_qubits, free < MAX_FREE_PARAMS);
        if op.is_free() {
            free += 1;
        }
        ops.push(op);
    }
    FuzzCase {
        n_qubits,
        ops,
        obs: random_obs(rng, n_qubits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_rng::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(11);
            (0..50).map(|_| random_case(&mut rng, 8)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn generated_cases_build_and_run() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..200 {
            let case = random_case(&mut rng, MAX_FUZZ_QUBITS);
            assert!(case.free_param_count() <= MAX_FREE_PARAMS);
            let (circuit, params) = case.build().expect("case builds");
            assert_eq!(circuit.n_params(), params.len());
            assert_eq!(circuit.n_qubits(), case.n_qubits);
            let state = circuit.run(&params).expect("case runs");
            let obs = case.observable().expect("observable builds");
            let e = obs.expectation(&state).expect("expectation evaluates");
            assert!(e.is_finite());
        }
    }

    #[test]
    fn obs_spec_text_round_trips() {
        let specs = [
            ObsSpec::GlobalCost,
            ObsSpec::LocalCost,
            ObsSpec::ZeroProjector,
            ObsSpec::PauliSum(vec![(0.5, "ZIX".into()), (-1.25, "YYI".into())]),
        ];
        for spec in specs {
            assert_eq!(ObsSpec::parse(&spec.render()).unwrap(), spec);
        }
    }

    #[test]
    fn map_qubits_drops_degenerate_two_qubit_ops() {
        let op = GenOp::TwoQubit {
            gate: TwoQubitRotationGate::Rxx,
            first: 2,
            second: 1,
            angle: 0.3,
            free: false,
        };
        assert!(op.map_qubits(|q| q.min(1)).is_none());
        assert!(op.map_qubits(|q| q).is_some());
    }
}
