//! Replayable reproducer artifacts.
//!
//! A mismatch is written under `target/fuzz/` as a self-contained text
//! file: a `key: value` header (seed, case index, engine pair, delta,
//! observable, which ops were trainable) followed by the shrunk circuit
//! as OpenQASM 2.0. QASM is the circuit payload so a human can read the
//! reproducer or feed it to any other toolchain; the `free-ops` line
//! restores the trainable-parameter structure QASM cannot express, which
//! the gradient-engine pairs need.
//!
//! `plateau fuzz --replay PATH` parses the artifact back into a
//! [`FuzzCase`] and re-runs exactly the engine pair that diverged.

use crate::engines::EnginePair;
use crate::gen::{FuzzCase, GenOp, ObsSpec};
use plateau_sim::qasm::{from_qasm, to_qasm};
use plateau_sim::{Op, Param};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Marker separating the header from the QASM payload.
const QASM_MARKER: &str = "--- qasm ---";

/// One reproducer: the minimal failing case plus enough metadata to
/// re-run and to trace it back to the originating fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Master seed of the run that found the mismatch.
    pub seed: u64,
    /// Case index within that run.
    pub case_index: usize,
    /// The engine pair that diverged.
    pub pair: EnginePair,
    /// Observed delta at the original (pre-shrink) case.
    pub delta: f64,
    /// The minimized case.
    pub case: FuzzCase,
}

impl Artifact {
    /// Renders the artifact text.
    ///
    /// # Errors
    ///
    /// Propagates QASM emission errors (a buildable case never fails).
    pub fn render(&self) -> Result<String, String> {
        let (circuit, params) = self.case.build().map_err(|e| e.to_string())?;
        let qasm = to_qasm(&circuit, &params).map_err(|e| e.to_string())?;
        let free_ops: Vec<String> = self
            .case
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_free())
            .map(|(i, _)| i.to_string())
            .collect();
        let params_line: Vec<String> = params.iter().map(|p| p.to_string()).collect();
        Ok(format!(
            "# plateau-fuzz reproducer — replay with `plateau fuzz --replay <this file>`\n\
             version: 1\n\
             seed: {seed:#x}\n\
             case: {index}\n\
             pair: {pair}\n\
             delta: {delta:e}\n\
             tolerance: {tol:e}\n\
             observable: {obs}\n\
             free-ops: {free}\n\
             params: {params}\n\
             {marker}\n\
             {qasm}",
            seed = self.seed,
            index = self.case_index,
            pair = self.pair,
            delta = self.delta,
            tol = self.pair.tolerance(),
            obs = self.case.obs.render(),
            free = free_ops.join(","),
            params = params_line.join(","),
            marker = QASM_MARKER,
        ))
    }

    /// Parses an artifact file's text back into an [`Artifact`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Artifact, String> {
        let (header, qasm) = text
            .split_once(QASM_MARKER)
            .ok_or_else(|| format!("missing {QASM_MARKER:?} marker"))?;
        let mut seed = None;
        let mut case_index = None;
        let mut pair = None;
        let mut delta = None;
        let mut obs = None;
        let mut free_ops: Vec<usize> = Vec::new();
        for line in header.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed header line {line:?}"))?;
            let value = value.trim();
            match key.trim() {
                "seed" => seed = Some(parse_seed(value)?),
                "case" => {
                    case_index =
                        Some(value.parse().map_err(|_| format!("bad case index {value:?}"))?)
                }
                "pair" => {
                    pair = Some(
                        EnginePair::parse(value)
                            .ok_or_else(|| format!("unknown engine pair {value:?}"))?,
                    )
                }
                "delta" => {
                    delta = Some(value.parse().map_err(|_| format!("bad delta {value:?}"))?)
                }
                "observable" => obs = Some(ObsSpec::parse(value)?),
                "free-ops" => {
                    free_ops = value
                        .split(',')
                        .filter(|s| !s.trim().is_empty())
                        .map(|s| s.trim().parse().map_err(|_| format!("bad free-op index {s:?}")))
                        .collect::<Result<_, _>>()?;
                }
                // Informational keys carried for humans.
                "version" | "tolerance" | "params" => {}
                other => return Err(format!("unknown header key {other:?}")),
            }
        }
        let circuit = from_qasm(qasm.trim_start())
            .map_err(|e| format!("artifact QASM failed to parse: {e}"))?;
        let obs = obs.ok_or("missing observable header")?;
        let case = case_from_circuit(&circuit, &free_ops, obs)?;
        Ok(Artifact {
            seed: seed.ok_or("missing seed header")?,
            case_index: case_index.ok_or("missing case header")?,
            pair: pair.ok_or("missing pair header")?,
            delta: delta.ok_or("missing delta header")?,
            case,
        })
    }

    /// Writes the artifact under `dir` with a deterministic name, creating
    /// the directory if needed. Returns the path.
    ///
    /// # Errors
    ///
    /// Propagates rendering and filesystem errors.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf, String> {
        let text = self.render()?;
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let path = dir.join(format!(
            "{}-seed{:x}-case{}.repro",
            self.pair,
            self.seed,
            self.case_index
        ));
        let mut f = std::fs::File::create(&path)
            .map_err(|e| format!("create {}: {e}", path.display()))?;
        f.write_all(text.as_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(path)
    }
}

/// Parses a decimal or `0x`-prefixed hex seed.
pub fn parse_seed(raw: &str) -> Result<u64, String> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad hex seed {raw:?}"))
    } else {
        raw.parse().map_err(|_| format!("bad seed {raw:?}"))
    }
}

/// Reconstructs a [`FuzzCase`] from a parsed (all-bound) circuit, marking
/// the ops listed in `free_ops` as trainable again.
fn case_from_circuit(
    circuit: &plateau_sim::Circuit,
    free_ops: &[usize],
    obs: ObsSpec,
) -> Result<FuzzCase, String> {
    let mut ops = Vec::with_capacity(circuit.ops().len());
    for (i, op) in circuit.ops().iter().enumerate() {
        let free = free_ops.contains(&i);
        let angle_of = |param: &Param| match param {
            Param::Bound(v) => Ok(*v),
            Param::Free(_) => Err("artifact circuit must be fully bound".to_string()),
        };
        let gen_op = match op {
            Op::Fixed { gate, qubits } => {
                if free {
                    return Err(format!("free-ops lists parameter-free op {i}"));
                }
                GenOp::Fixed {
                    gate: *gate,
                    qubits: qubits.clone(),
                }
            }
            Op::Rotation { gate, qubit, param } => GenOp::Rotation {
                gate: *gate,
                qubit: *qubit,
                angle: angle_of(param)?,
                free,
            },
            Op::ControlledRotation {
                gate,
                control,
                target,
                param,
            } => GenOp::Controlled {
                gate: *gate,
                control: *control,
                target: *target,
                angle: angle_of(param)?,
                free,
            },
            Op::TwoQubitRotation {
                gate,
                first,
                second,
                param,
            } => GenOp::TwoQubit {
                gate: *gate,
                first: *first,
                second: *second,
                angle: angle_of(param)?,
                free,
            },
        };
        ops.push(gen_op);
    }
    if let Some(&bad) = free_ops.iter().find(|&&i| i >= ops.len()) {
        return Err(format!("free-op index {bad} out of range"));
    }
    Ok(FuzzCase {
        n_qubits: circuit.n_qubits(),
        ops,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_case;
    use plateau_rng::{SeedableRng, StdRng};

    #[test]
    fn artifact_text_round_trips_random_cases() {
        let mut rng = StdRng::seed_from_u64(41);
        for i in 0..100 {
            let case = random_case(&mut rng, 8);
            let artifact = Artifact {
                seed: 0xfeed,
                case_index: i,
                pair: EnginePair::AdjointVsShift,
                delta: 0.125,
                case,
            };
            let text = artifact.render().expect("render");
            let parsed = Artifact::parse(&text).expect("parse");
            assert_eq!(parsed.pair, artifact.pair);
            assert_eq!(parsed.seed, artifact.seed);
            assert_eq!(parsed.case_index, artifact.case_index);
            assert_eq!(parsed.case.n_qubits, artifact.case.n_qubits);
            assert_eq!(parsed.case.obs, artifact.case.obs);
            assert_eq!(parsed.case.free_param_count(), artifact.case.free_param_count());
            // The reconstructed case must execute identically: compare
            // final states of both builds.
            let (c1, p1) = artifact.case.build().unwrap();
            let (c2, p2) = parsed.case.build().unwrap();
            assert_eq!(p1, p2, "parameter vectors must survive the text form");
            assert_eq!(c1.run(&p1).unwrap(), c2.run(&p2).unwrap());
        }
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0xfeed").unwrap(), 0xfeed);
        assert_eq!(parse_seed("0XFEED").unwrap(), 0xfeed);
        assert_eq!(parse_seed("42").unwrap(), 42);
        assert!(parse_seed("0xzz").is_err());
        assert!(parse_seed("feed").is_err());
    }

    #[test]
    fn malformed_artifacts_are_rejected_with_context() {
        assert!(Artifact::parse("no marker here").unwrap_err().contains("marker"));
        let text = "pair: not-a-pair\n--- qasm ---\nOPENQASM 2.0;\nqreg q[1];\n";
        assert!(Artifact::parse(text).unwrap_err().contains("unknown engine pair"));
    }

    #[test]
    fn write_to_creates_deterministic_path() {
        let case = FuzzCase {
            n_qubits: 1,
            ops: vec![GenOp::Rotation {
                gate: plateau_sim::RotationGate::Ry,
                qubit: 0,
                angle: 0.5,
                free: true,
            }],
            obs: ObsSpec::GlobalCost,
        };
        let artifact = Artifact {
            seed: 0xabc,
            case_index: 7,
            pair: EnginePair::QasmRoundTrip,
            delta: 1.0,
            case,
        };
        let dir = std::env::temp_dir().join(format!("plateau-fuzz-test-{}", std::process::id()));
        let path = artifact.write_to(&dir).expect("write");
        assert!(path.ends_with("qasm-roundtrip-seedabc-case7.repro"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Artifact::parse(&text).unwrap(), artifact);
        std::fs::remove_dir_all(&dir).ok();
    }
}
