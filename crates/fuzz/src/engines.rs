//! The engine matrix: every redundant way the workspace can execute a
//! case, paired up into cross-checks with per-pair tolerances.
//!
//! Each pair compares two implementations that share as little code as
//! possible:
//!
//! | pair | oracle principle | tolerance |
//! |------|------------------|-----------|
//! | `serial-vs-parallel` | chunked threaded kernels are spec'd bitwise-identical to the serial loops | exact (`0`) |
//! | `state-vs-unitary` | dense `unitary.rs` matrix product, no shared kernel code | `1e-10` |
//! | `state-vs-density` | `tr(ρO)` from `mixed.rs` vs `⟨ψ\|O\|ψ⟩` | `1e-9` |
//! | `raw-vs-optimized` | `passes::simplify` must preserve semantics (states always, full unitary at small n) | `1e-9` |
//! | `qasm-roundtrip` | emit→parse→re-simulate, plus emit fixed-point | `1e-12` |
//! | `adjoint-vs-shift` | two exact gradient algorithms | `1e-8` |
//! | `adjoint-vs-finite-diff` | exact vs `O(ε²)` central differences | `5e-6` |
//! | `fused-vs-raw` | gate-fusion compiler output vs the gate-by-gate run | `1e-10` |
//! | `batched-vs-per-circuit` | `expectation_many` through the batched executor's scratch pool vs one `expectation` per set | exact (`0`) |
//! | `mutated-vs-serial` | deliberately broken kernel (self-test only) | `1e-9` |
//! | `fused-mutated-vs-serial` | fusion with reversed merge order (self-test only) | `1e-9` |
//!
//! An engine error (`Err` from any simulator/gradient call) on a
//! generator-valid case is itself a divergence: it is reported as a
//! mismatch with infinite delta rather than swallowed.

use crate::gen::{FuzzCase, SMALL_ORACLE_QUBITS};
use plateau_grad::{Adjoint, FiniteDifference, GradientEngine, ParameterShift};
use plateau_sim::passes::simplify;
use plateau_sim::qasm::{from_qasm, to_qasm};
use plateau_sim::{
    circuit_unitary, par_threshold, set_par_threshold, Circuit, DensityMatrix, Op, Param, State,
};
use std::sync::Mutex;

/// One cross-check of the engine matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePair {
    /// Serial amplitude kernels vs the chunked multi-threaded variants
    /// (par threshold forced to 0).
    SerialVsParallel,
    /// Statevector run vs the dense full-circuit unitary applied to
    /// `|0…0⟩` (small registers only).
    StateVsUnitary,
    /// `⟨ψ|O|ψ⟩` vs `tr(ρO)` from the density-matrix engine on the same
    /// noiseless circuit (small registers only).
    StateVsDensity,
    /// The raw circuit vs its `passes::simplify` form.
    RawVsOptimized,
    /// QASM emit→parse→re-simulate, plus the emit fixed-point check.
    QasmRoundTrip,
    /// Adjoint vs two/four-term parameter-shift gradients.
    AdjointVsShift,
    /// Adjoint vs central finite-difference gradients.
    AdjointVsFiniteDiff,
    /// The gate-fusion compiler's segment execution vs the gate-by-gate
    /// run of the same circuit.
    FusedVsRaw,
    /// A parameter-set sweep through the batched executor (reused scratch
    /// statevectors, single compile) vs one fresh `expectation` call per
    /// set.
    BatchedVsPerCircuit,
    /// The serve wire codec: serialize→parse→re-serialize must be a
    /// fixed point, the parsed circuit must execute identically to the
    /// original, and byte-mutated request bodies must produce structured
    /// errors — never a panic.
    ServeCodec,
    /// The deliberately broken off-by-one kernel vs the serial engine —
    /// only scheduled by the mutation self-test, never in normal runs.
    MutatedVsSerial,
    /// A fusion pass that merges rotation runs in the **wrong** matrix
    /// order vs the serial engine — only scheduled by the mutation
    /// self-test, never in normal runs.
    FusedMutatedVsSerial,
}

impl EnginePair {
    /// The pairs a normal fuzz run schedules (everything except the
    /// self-test mutant).
    pub const ALL: [EnginePair; 10] = [
        EnginePair::SerialVsParallel,
        EnginePair::StateVsUnitary,
        EnginePair::StateVsDensity,
        EnginePair::RawVsOptimized,
        EnginePair::QasmRoundTrip,
        EnginePair::AdjointVsShift,
        EnginePair::AdjointVsFiniteDiff,
        EnginePair::FusedVsRaw,
        EnginePair::BatchedVsPerCircuit,
        EnginePair::ServeCodec,
    ];

    /// Stable name used in reports and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            EnginePair::SerialVsParallel => "serial-vs-parallel",
            EnginePair::StateVsUnitary => "state-vs-unitary",
            EnginePair::StateVsDensity => "state-vs-density",
            EnginePair::RawVsOptimized => "raw-vs-optimized",
            EnginePair::QasmRoundTrip => "qasm-roundtrip",
            EnginePair::AdjointVsShift => "adjoint-vs-shift",
            EnginePair::AdjointVsFiniteDiff => "adjoint-vs-finite-diff",
            EnginePair::FusedVsRaw => "fused-vs-raw",
            EnginePair::BatchedVsPerCircuit => "batched-vs-per-circuit",
            EnginePair::ServeCodec => "serve-codec",
            EnginePair::MutatedVsSerial => "mutated-vs-serial",
            EnginePair::FusedMutatedVsSerial => "fused-mutated-vs-serial",
        }
    }

    /// Inverse of [`EnginePair::name`].
    pub fn parse(s: &str) -> Option<EnginePair> {
        [
            EnginePair::SerialVsParallel,
            EnginePair::StateVsUnitary,
            EnginePair::StateVsDensity,
            EnginePair::RawVsOptimized,
            EnginePair::QasmRoundTrip,
            EnginePair::AdjointVsShift,
            EnginePair::AdjointVsFiniteDiff,
            EnginePair::FusedVsRaw,
            EnginePair::BatchedVsPerCircuit,
            EnginePair::ServeCodec,
            EnginePair::MutatedVsSerial,
            EnginePair::FusedMutatedVsSerial,
        ]
        .into_iter()
        .find(|p| p.name() == s)
    }

    /// Largest acceptable delta for this pair.
    ///
    /// Rationale: the threaded kernels are *specified* bitwise-identical,
    /// so their budget is zero. Exact-vs-exact comparisons (unitary
    /// oracle, density matrix, optimizer passes, the two analytic
    /// gradient engines) only accumulate `f64` rounding across at most a
    /// few dozen gates, so `1e-8`…`1e-10` is generous. Central
    /// differences at `ε = 1e-6` carry `O(ε²)` truncation plus `O(u/ε)`
    /// cancellation noise (~1e-10 each); `5e-6` leaves three orders of
    /// margin while still catching any real sign/index bug, which shows
    /// up at `O(1)`. QASM round-trips re-execute the identical op
    /// sequence, so they must agree to the last bit of the printed
    /// angles. Fused execution multiplies gate matrices together before
    /// touching the state, which reassociates the floating-point work —
    /// mathematically identical but not bitwise, so unlike
    /// serial-vs-parallel its budget is `1e-10` rather than zero. The
    /// batched executor runs the *same* evaluator arithmetic per set as
    /// the one-at-a-time path (only the statevector's home differs), so
    /// its contract is bitwise and its budget zero.
    pub fn tolerance(self) -> f64 {
        match self {
            EnginePair::SerialVsParallel => 0.0,
            EnginePair::BatchedVsPerCircuit => 0.0,
            // The wire codec transports the op list verbatim, so the
            // rebuilt circuit replays byte-identical arithmetic; and the
            // canonical-form fixed point is a string equality, so there
            // is no rounding to budget for.
            EnginePair::ServeCodec => 0.0,
            EnginePair::StateVsUnitary => 1e-10,
            EnginePair::StateVsDensity => 1e-9,
            EnginePair::RawVsOptimized => 1e-9,
            EnginePair::QasmRoundTrip => 1e-12,
            EnginePair::AdjointVsShift => 1e-8,
            EnginePair::AdjointVsFiniteDiff => 5e-6,
            EnginePair::FusedVsRaw => 1e-10,
            EnginePair::MutatedVsSerial => 1e-9,
            EnginePair::FusedMutatedVsSerial => 1e-9,
        }
    }

    /// Whether this pair can run on `case` (oracle cost gates on the
    /// register size; gradient pairs need at least one trainable
    /// parameter).
    pub fn applies(self, case: &FuzzCase) -> bool {
        match self {
            EnginePair::SerialVsParallel
            | EnginePair::RawVsOptimized
            | EnginePair::QasmRoundTrip
            | EnginePair::FusedVsRaw
            | EnginePair::BatchedVsPerCircuit
            | EnginePair::ServeCodec
            | EnginePair::MutatedVsSerial
            | EnginePair::FusedMutatedVsSerial => true,
            EnginePair::StateVsUnitary | EnginePair::StateVsDensity => {
                case.n_qubits <= SMALL_ORACLE_QUBITS
            }
            EnginePair::AdjointVsShift | EnginePair::AdjointVsFiniteDiff => {
                case.free_param_count() > 0
            }
        }
    }
}

impl std::fmt::Display for EnginePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A divergence between the two sides of a pair.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The pair that diverged.
    pub pair: EnginePair,
    /// Observed delta (infinite when one side errored out).
    pub delta: f64,
    /// Human-readable description of what differed.
    pub detail: String,
}

/// Guards the process-global parallel threshold while the
/// serial-vs-parallel pair toggles it, so concurrent harness invocations
/// in one test binary each get a genuine serial-vs-parallel comparison.
static THRESHOLD_LOCK: Mutex<()> = Mutex::new(());

/// Largest `|aᵢ − bᵢ|` over the amplitude vectors, or `∞` on dimension
/// mismatch.
fn state_delta(a: &State, b: &State) -> f64 {
    if a.n_qubits() != b.n_qubits() {
        return f64::INFINITY;
    }
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).norm())
        .fold(0.0, f64::max)
}

/// Largest `|gᵢ − hᵢ|` over two gradient vectors, or `∞` on length
/// mismatch.
fn grad_delta(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

fn verdict(pair: EnginePair, delta: f64, detail: String) -> Result<f64, Mismatch> {
    if delta > pair.tolerance() {
        Err(Mismatch {
            pair,
            delta,
            detail,
        })
    } else {
        Ok(delta)
    }
}

/// Converts an engine error into a reported divergence: the generator
/// only emits valid cases, so a refusal is a bug on par with a wrong
/// number.
macro_rules! engine_try {
    ($pair:expr, $side:literal, $expr:expr) => {
        match $expr {
            Ok(v) => v,
            Err(e) => {
                return Err(Mismatch {
                    pair: $pair,
                    delta: f64::INFINITY,
                    detail: format!(concat!($side, " errored: {}"), e),
                })
            }
        }
    };
}

/// Runs one pair of the engine matrix on `case`: `Ok(delta)` when the
/// two sides agreed within tolerance (the delta shows the headroom),
/// `Err` on divergence.
///
/// # Errors
///
/// Returns the [`Mismatch`] describing the divergence.
pub fn check_pair(pair: EnginePair, case: &FuzzCase) -> Result<f64, Mismatch> {
    plateau_obs::counter!("fuzz.comparisons").inc();
    let (circuit, params) = engine_try!(pair, "case build", case.build());
    match pair {
        EnginePair::SerialVsParallel => {
            let _guard = THRESHOLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let saved = par_threshold();
            set_par_threshold(usize::MAX);
            let serial = circuit.run(&params);
            set_par_threshold(0);
            let parallel = circuit.run(&params);
            set_par_threshold(saved);
            let serial = engine_try!(pair, "serial kernels", serial);
            let parallel = engine_try!(pair, "parallel kernels", parallel);
            let delta = state_delta(&serial, &parallel);
            verdict(
                pair,
                delta,
                format!("parallel kernels diverged from serial (max amplitude delta {delta:e})"),
            )
        }
        EnginePair::StateVsUnitary => {
            let state = engine_try!(pair, "statevector", circuit.run(&params));
            let u = engine_try!(pair, "unitary oracle", circuit_unitary(&circuit, &params));
            let mut oracle = State::zero(case.n_qubits);
            engine_try!(pair, "unitary apply", oracle.apply_matrix(&u));
            let delta = state_delta(&state, &oracle);
            verdict(
                pair,
                delta,
                format!("kernel state diverged from full-unitary oracle (max amplitude delta {delta:e})"),
            )
        }
        EnginePair::StateVsDensity => {
            let obs = engine_try!(pair, "observable build", case.observable());
            let state = engine_try!(pair, "statevector", circuit.run(&params));
            let pure = engine_try!(pair, "pure expectation", obs.expectation(&state));
            let mut rho = DensityMatrix::zero(case.n_qubits);
            engine_try!(pair, "density evolution", rho.apply_circuit(&circuit, &params));
            let mixed = engine_try!(pair, "density expectation", rho.expectation(&obs));
            let delta = (pure - mixed).abs();
            let trace_err = (rho.trace() - 1.0).abs().max((rho.purity() - 1.0).abs());
            let delta = delta.max(trace_err);
            verdict(
                pair,
                delta,
                format!(
                    "tr(ρO) = {mixed} vs ⟨ψ|O|ψ⟩ = {pure} (delta {delta:e}, trace/purity err {trace_err:e})"
                ),
            )
        }
        EnginePair::RawVsOptimized => {
            let optimized = simplify(&circuit);
            let raw_state = engine_try!(pair, "raw circuit", circuit.run(&params));
            let opt_state = engine_try!(pair, "optimized circuit", optimized.run(&params));
            let mut delta = state_delta(&raw_state, &opt_state);
            if case.n_qubits <= SMALL_ORACLE_QUBITS {
                let u_raw = engine_try!(pair, "raw unitary", circuit_unitary(&circuit, &params));
                let u_opt =
                    engine_try!(pair, "optimized unitary", circuit_unitary(&optimized, &params));
                delta = delta.max(u_raw.max_abs_diff(&u_opt));
            }
            verdict(
                pair,
                delta,
                format!(
                    "passes::simplify changed semantics ({} -> {} ops, max delta {delta:e})",
                    circuit.ops().len(),
                    optimized.ops().len()
                ),
            )
        }
        EnginePair::QasmRoundTrip => {
            let text = engine_try!(pair, "qasm emit", to_qasm(&circuit, &params));
            let parsed = engine_try!(pair, "qasm parse", from_qasm(&text));
            let re_emitted = engine_try!(pair, "qasm re-emit", to_qasm(&parsed, &[]));
            if re_emitted != text {
                return Err(Mismatch {
                    pair,
                    delta: f64::INFINITY,
                    detail: "parse→emit is not a fixed point".into(),
                });
            }
            let original = engine_try!(pair, "original circuit", circuit.run(&params));
            let replayed = engine_try!(pair, "parsed circuit", parsed.run(&[]));
            let delta = state_delta(&original, &replayed);
            verdict(
                pair,
                delta,
                format!("re-simulated QASM diverged (max amplitude delta {delta:e})"),
            )
        }
        EnginePair::AdjointVsShift => {
            let obs = engine_try!(pair, "observable build", case.observable());
            let g_adj = engine_try!(pair, "adjoint", Adjoint.gradient(&circuit, &params, &obs));
            let g_shift = engine_try!(
                pair,
                "parameter shift",
                ParameterShift.gradient(&circuit, &params, &obs)
            );
            let delta = grad_delta(&g_adj, &g_shift);
            verdict(
                pair,
                delta,
                format!("adjoint and parameter-shift gradients diverged (max delta {delta:e})"),
            )
        }
        EnginePair::AdjointVsFiniteDiff => {
            let obs = engine_try!(pair, "observable build", case.observable());
            let g_adj = engine_try!(pair, "adjoint", Adjoint.gradient(&circuit, &params, &obs));
            let g_fd = engine_try!(
                pair,
                "finite differences",
                FiniteDifference::default().gradient(&circuit, &params, &obs)
            );
            let delta = grad_delta(&g_adj, &g_fd);
            verdict(
                pair,
                delta,
                format!("adjoint and finite-difference gradients diverged (max delta {delta:e})"),
            )
        }
        EnginePair::FusedVsRaw => {
            // Compile directly — no global knob toggling, so this pair
            // needs no lock and cannot race other pairs in flight.
            let raw = engine_try!(pair, "gate-by-gate run", circuit.run(&params));
            let compiled = plateau_sim::compile(&circuit);
            let fused = engine_try!(pair, "fused kernels", compiled.run(&params));
            let delta = state_delta(&raw, &fused);
            verdict(
                pair,
                delta,
                format!(
                    "fused kernels diverged from gate-by-gate run ({} -> {} segments, max amplitude delta {delta:e})",
                    compiled.gates_in(),
                    compiled.gates_out()
                ),
            )
        }
        EnginePair::BatchedVsPerCircuit => {
            let obs = engine_try!(pair, "observable build", case.observable());
            // Nine deterministic perturbations of the case's parameters:
            // one more than the batched engine's parallel threshold, so
            // the sweep exercises the fan-out path on multi-core hosts
            // (and the serial scratch path elsewhere) against the same
            // oracle.
            let sets: Vec<Vec<f64>> = (0..9)
                .map(|j| {
                    params
                        .iter()
                        .map(|p| p + 0.05 * (j as f64 - 4.0))
                        .collect()
                })
                .collect();
            let batched = engine_try!(
                pair,
                "batched executor",
                plateau_grad::expectation_many(&circuit, &sets, &obs)
            );
            let mut delta = 0.0f64;
            for (set, b) in sets.iter().zip(&batched) {
                let one = engine_try!(
                    pair,
                    "per-circuit expectation",
                    plateau_grad::expectation(&circuit, set, &obs)
                );
                delta = delta.max((one - b).abs());
            }
            verdict(
                pair,
                delta,
                format!("batched sweep diverged from per-circuit loop (max delta {delta:e})"),
            )
        }
        EnginePair::ServeCodec => {
            let spec = plateau_serve::CircuitSpec::from_circuit(&circuit);
            let request = plateau_serve::Request::Simulate(plateau_serve::SimulateRequest {
                circuit: spec,
                params: params.clone(),
                observable: plateau_serve::ObservableSpec::Global,
                seed: 0xfeed,
                shots: 0,
            });
            let body = request.serialize();
            // Fixed point 1: parse(serialize(r)) == r.
            let parsed = engine_try!(
                pair,
                "request parse",
                plateau_serve::Request::parse("/simulate", &body)
            );
            if parsed != request {
                return Err(Mismatch {
                    pair,
                    delta: f64::INFINITY,
                    detail: "parsed request is not equal to the original".to_string(),
                });
            }
            // Fixed point 2: serialize(parse(s)) == s on canonical form.
            let body2 = parsed.serialize();
            if body2 != body {
                return Err(Mismatch {
                    pair,
                    delta: f64::INFINITY,
                    detail: format!(
                        "re-serialization is not a fixed point:\n  {body}\nvs\n  {body2}"
                    ),
                });
            }
            // Semantic: the circuit rebuilt from the wire form replays
            // the identical op list — bitwise-equal final state.
            let rebuilt_spec = match &parsed {
                plateau_serve::Request::Simulate(s) => &s.circuit,
                _ => unreachable!("parsed from /simulate"),
            };
            let rebuilt = engine_try!(pair, "circuit rebuild", rebuilt_spec.build());
            let original_state = engine_try!(pair, "original run", circuit.run(&params));
            let rebuilt_state = engine_try!(pair, "rebuilt run", rebuilt.run(&params));
            let delta = state_delta(&original_state, &rebuilt_state);

            // Adversarial side: deterministic byte mutations of the valid
            // body must yield structured errors or valid re-parses —
            // never a panic (and any accidental re-parse must itself be
            // canonical-form stable).
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in body.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            for round in 0..24u64 {
                // xorshift64* walk seeded by the body hash.
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
                let mut mutated = body.clone().into_bytes();
                let pos = (h.wrapping_add(round) % mutated.len() as u64) as usize;
                match (h >> 24) % 4 {
                    0 => mutated[pos] ^= 1 << ((h >> 32) % 8), // bit flip
                    1 => mutated.truncate(pos),                // truncation
                    2 => mutated.insert(pos, (h >> 40) as u8), // junk insert
                    _ => {
                        mutated.remove(pos); // deletion
                    }
                }
                let text = String::from_utf8_lossy(&mutated).into_owned();
                let outcome = std::panic::catch_unwind(|| {
                    plateau_serve::Request::parse("/simulate", &text)
                        .map(|r| r.serialize())
                });
                match outcome {
                    Err(_) => {
                        return Err(Mismatch {
                            pair,
                            delta: f64::INFINITY,
                            detail: format!(
                                "codec panicked on mutated body (round {round}): {text:?}"
                            ),
                        });
                    }
                    // A mutation that survives as a valid request is fine
                    // (flipping a digit yields another valid body), but
                    // the result must still round-trip canonically.
                    Ok(Ok(reserialized)) => {
                        let again = std::panic::catch_unwind(|| {
                            plateau_serve::Request::parse("/simulate", &reserialized)
                                .map(|r| r.serialize())
                        });
                        match again {
                            Ok(Ok(s)) if s == reserialized => {}
                            Ok(Ok(s)) => {
                                return Err(Mismatch {
                                    pair,
                                    delta: f64::INFINITY,
                                    detail: format!(
                                        "mutated-but-valid body lost the fixed point:\n  {reserialized}\nvs\n  {s}"
                                    ),
                                });
                            }
                            Ok(Err(e)) => {
                                return Err(Mismatch {
                                    pair,
                                    delta: f64::INFINITY,
                                    detail: format!(
                                        "serializer emitted an unparseable body: {e} from {reserialized:?}"
                                    ),
                                });
                            }
                            Err(_) => {
                                return Err(Mismatch {
                                    pair,
                                    delta: f64::INFINITY,
                                    detail: "codec panicked re-parsing its own output".to_string(),
                                });
                            }
                        }
                    }
                    Ok(Err(_structured_error)) => {}
                }
            }
            verdict(
                pair,
                delta,
                format!("wire round-trip changed the circuit (max amplitude delta {delta:e})"),
            )
        }
        EnginePair::MutatedVsSerial => {
            let reference = engine_try!(pair, "serial kernels", circuit.run(&params));
            let mutated = engine_try!(pair, "mutated kernel", mutated_run(&circuit, &params));
            let delta = state_delta(&reference, &mutated);
            verdict(
                pair,
                delta,
                format!("injected off-by-one kernel detected (max amplitude delta {delta:e})"),
            )
        }
        EnginePair::FusedMutatedVsSerial => {
            let reference = engine_try!(pair, "serial kernels", circuit.run(&params));
            let mutated =
                engine_try!(pair, "mutated fusion", fused_mutated_run(&circuit, &params));
            let delta = state_delta(&reference, &mutated);
            verdict(
                pair,
                delta,
                format!("injected fusion merge-order bug detected (max amplitude delta {delta:e})"),
            )
        }
    }
}

/// A deliberately broken statevector engine for the mutation self-test:
/// single-qubit rotations go through a hand-rolled kernel whose loop
/// bound is off by one, silently skipping the **last amplitude pair** of
/// the register. Every other op kind delegates to the real kernels. A
/// harness that cannot catch and shrink this bug cannot be trusted to
/// catch a real one.
pub fn mutated_run(circuit: &Circuit, params: &[f64]) -> Result<State, plateau_sim::SimError> {
    let mut state = State::zero(circuit.n_qubits());
    for op in circuit.ops() {
        match op {
            Op::Rotation { gate, qubit, param } => {
                let theta = match param {
                    Param::Free(i) => params[*i],
                    Param::Bound(v) => *v,
                };
                let [m00, m01, m10, m11] = gate.entries(theta);
                let mut amps = state.into_amplitudes();
                let dim = amps.len();
                let stride = 1usize << qubit;
                let last_pair = dim / 2 - 1; // the pair the bug drops
                let mut pair = 0;
                let mut base = 0;
                while base < dim {
                    for off in base..base + stride {
                        if pair < last_pair {
                            let a = amps[off];
                            let b = amps[off + stride];
                            amps[off] = m00 * a + m01 * b;
                            amps[off + stride] = m10 * a + m11 * b;
                        }
                        pair += 1;
                    }
                    base += stride << 1;
                }
                state = State::from_amplitudes_unnormalized(amps)?;
            }
            other => other.apply(&mut state, params)?,
        }
    }
    Ok(state)
}

/// A deliberately broken fusion pass for the mutation self-test: runs of
/// adjacent single-qubit rotations on the same wire are merged into one
/// 2×2 matrix — but in the **reversed** product order (`first · second`
/// instead of `second · first`), the classic gate-fusion mistake. The
/// merged matrix is correct whenever the run's rotations commute (a run
/// of length 1, or repeated same-axis gates), so the harness must find a
/// case with two non-commuting adjacent rotations to expose it — and the
/// shrinker should reduce any such witness to a two-gate circuit.
pub fn fused_mutated_run(circuit: &Circuit, params: &[f64]) -> Result<State, plateau_sim::SimError> {
    // (P·Q) in row-major 2×2 layout.
    fn mat2_mul(p: &[plateau_linalg::C64; 4], q: &[plateau_linalg::C64; 4]) -> [plateau_linalg::C64; 4] {
        [
            p[0] * q[0] + p[1] * q[2],
            p[0] * q[1] + p[1] * q[3],
            p[2] * q[0] + p[3] * q[2],
            p[2] * q[1] + p[3] * q[3],
        ]
    }

    let mut state = State::zero(circuit.n_qubits());
    // (wire, merged matrix) of the currently open rotation run.
    let mut pending: Option<(usize, [plateau_linalg::C64; 4])> = None;
    for op in circuit.ops() {
        match op {
            Op::Rotation { gate, qubit, param } => {
                let theta = match param {
                    Param::Free(i) => params[*i],
                    Param::Bound(v) => *v,
                };
                let m = gate.entries(theta);
                pending = Some(match pending.take() {
                    // BUG: the later gate must LEFT-multiply the run
                    // (`m · acc`); this merges as `acc · m`.
                    Some((q, acc)) if q == *qubit => (q, mat2_mul(&acc, &m)),
                    Some((q, acc)) => {
                        state.apply_fused_single(q, &acc)?;
                        (*qubit, m)
                    }
                    None => (*qubit, m),
                });
            }
            other => {
                if let Some((q, acc)) = pending.take() {
                    state.apply_fused_single(q, &acc)?;
                }
                other.apply(&mut state, params)?;
            }
        }
    }
    if let Some((q, acc)) = pending {
        state.apply_fused_single(q, &acc)?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_case;
    use plateau_rng::{SeedableRng, StdRng};

    #[test]
    fn pair_names_round_trip() {
        for pair in EnginePair::ALL
            .into_iter()
            .chain([EnginePair::MutatedVsSerial, EnginePair::FusedMutatedVsSerial])
        {
            assert_eq!(EnginePair::parse(pair.name()), Some(pair));
        }
        assert_eq!(EnginePair::parse("nonsense"), None);
    }

    #[test]
    fn matrix_is_clean_on_random_cases() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..60 {
            let case = random_case(&mut rng, 6);
            for pair in EnginePair::ALL {
                if !pair.applies(&case) {
                    continue;
                }
                if let Err(m) = check_pair(pair, &case) {
                    panic!("{}: {} on case {case:#?}", m.pair, m.detail);
                }
            }
        }
    }

    #[test]
    fn mutated_kernel_is_caught() {
        // A single RX on the top pair of a 1-qubit register is the
        // smallest trigger: the broken kernel skips its only pair.
        let case = FuzzCase {
            n_qubits: 1,
            ops: vec![crate::gen::GenOp::Rotation {
                gate: plateau_sim::RotationGate::Rx,
                qubit: 0,
                angle: 1.0,
                free: false,
            }],
            obs: crate::gen::ObsSpec::GlobalCost,
        };
        let m = check_pair(EnginePair::MutatedVsSerial, &case).expect_err("bug must be detected");
        assert!(m.delta > 0.1, "delta was {}", m.delta);
    }

    #[test]
    fn fused_merge_order_bug_is_caught() {
        // RX then RY on one wire: non-commuting, so reversing the merge
        // order produces a visibly different state. This is also the
        // shape the shrinker should reduce any larger witness to.
        let case = FuzzCase {
            n_qubits: 1,
            ops: vec![
                crate::gen::GenOp::Rotation {
                    gate: plateau_sim::RotationGate::Rx,
                    qubit: 0,
                    angle: 1.0,
                    free: false,
                },
                crate::gen::GenOp::Rotation {
                    gate: plateau_sim::RotationGate::Ry,
                    qubit: 0,
                    angle: 0.7,
                    free: false,
                },
            ],
            obs: crate::gen::ObsSpec::GlobalCost,
        };
        let m = check_pair(EnginePair::FusedMutatedVsSerial, &case)
            .expect_err("merge-order bug must be detected");
        assert!(m.delta > 0.01, "delta was {}", m.delta);

        // Commuting runs hide the bug: same-axis rotations merge
        // identically in either order.
        let commuting = FuzzCase {
            n_qubits: 1,
            ops: vec![
                crate::gen::GenOp::Rotation {
                    gate: plateau_sim::RotationGate::Rz,
                    qubit: 0,
                    angle: 1.0,
                    free: false,
                },
                crate::gen::GenOp::Rotation {
                    gate: plateau_sim::RotationGate::Rz,
                    qubit: 0,
                    angle: 0.7,
                    free: false,
                },
            ],
            obs: crate::gen::ObsSpec::GlobalCost,
        };
        check_pair(EnginePair::FusedMutatedVsSerial, &commuting)
            .expect("commuting run must not trigger the mutant");
    }

    #[test]
    fn gradient_pairs_skip_parameterless_cases() {
        let case = FuzzCase {
            n_qubits: 2,
            ops: vec![crate::gen::GenOp::Fixed {
                gate: plateau_sim::FixedGate::H,
                qubits: vec![0],
            }],
            obs: crate::gen::ObsSpec::GlobalCost,
        };
        assert!(!EnginePair::AdjointVsShift.applies(&case));
        assert!(!EnginePair::AdjointVsFiniteDiff.applies(&case));
        assert!(EnginePair::SerialVsParallel.applies(&case));
    }
}
