//! The fuzz driver: case loop, engine-matrix scheduling, shrinking, and
//! artifact emission — plus replay of a previously written reproducer.

use crate::artifact::Artifact;
use crate::engines::{check_pair, EnginePair, Mismatch};
use crate::gen::{random_case, FuzzCase, MAX_FUZZ_QUBITS};
use crate::shrink::shrink;
use plateau_rng::{derive_seed, SeedableRng, StdRng};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of random cases to draw.
    pub cases: usize,
    /// Master seed; each case derives its own stream, so runs are
    /// reproducible and cases are independent.
    pub seed: u64,
    /// Register-size cap (clamped to [`MAX_FUZZ_QUBITS`]).
    pub max_qubits: usize,
    /// Where reproducers are written; `None` disables artifact output.
    pub artifact_dir: Option<PathBuf>,
    /// Mutation self-test mode: run **only** the deliberately broken
    /// engines (the off-by-one kernel and the wrong-order fusion pass)
    /// against the serial engine and expect both to be caught.
    pub mutate: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            cases: 200,
            seed: 0xfeed,
            max_qubits: MAX_FUZZ_QUBITS,
            artifact_dir: Some(PathBuf::from("target/fuzz")),
            mutate: false,
        }
    }
}

/// Per-pair aggregate over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairStats {
    /// How many cases this pair executed on.
    pub comparisons: usize,
    /// Largest observed delta across those comparisons (0 when the pair
    /// never ran or always agreed exactly).
    pub max_delta: f64,
}

/// One confirmed divergence, after shrinking.
#[derive(Debug, Clone)]
pub struct FoundMismatch {
    /// Index of the originating case.
    pub case_index: usize,
    /// The diverging pair.
    pub pair: EnginePair,
    /// Delta observed on the original case.
    pub delta: f64,
    /// Engine-level description of the divergence.
    pub detail: String,
    /// Gate count before shrinking.
    pub original_gates: usize,
    /// The minimized reproducer.
    pub shrunk: FuzzCase,
    /// Where the reproducer was written (if artifacts are enabled).
    pub artifact: Option<PathBuf>,
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases drawn.
    pub cases: usize,
    /// Per-pair aggregates, in scheduling order.
    pub stats: BTreeMap<&'static str, PairStats>,
    /// Every divergence found, shrunk and (optionally) written to disk.
    pub mismatches: Vec<FoundMismatch>,
}

impl FuzzReport {
    /// Total comparisons across all pairs.
    pub fn comparisons(&self) -> usize {
        self.stats.values().map(|s| s.comparisons).sum()
    }

    /// Whether the engine matrix agreed everywhere.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Runs the differential fuzzer.
///
/// Every case gets its own RNG stream derived from `(config.seed, case
/// index)`, so any single case can be regenerated without replaying the
/// run — the artifact records both numbers.
pub fn run(config: &FuzzConfig) -> FuzzReport {
    let pairs: &[EnginePair] = if config.mutate {
        &[EnginePair::MutatedVsSerial, EnginePair::FusedMutatedVsSerial]
    } else {
        &EnginePair::ALL
    };
    let mut report = FuzzReport {
        cases: config.cases,
        ..FuzzReport::default()
    };
    for index in 0..config.cases {
        plateau_obs::counter!("fuzz.cases").inc();
        let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, index as u64, 0, 0));
        let case = random_case(&mut rng, config.max_qubits);
        for &pair in pairs {
            if !pair.applies(&case) {
                continue;
            }
            let stats = report.stats.entry(pair.name()).or_default();
            stats.comparisons += 1;
            match check_pair(pair, &case) {
                Ok(delta) => stats.max_delta = stats.max_delta.max(delta),
                Err(Mismatch { delta, detail, .. }) => {
                    plateau_obs::counter!("fuzz.mismatches").inc();
                    stats.max_delta = stats.max_delta.max(delta);
                    let (shrunk, _steps) =
                        shrink(&case, |c| pair.applies(c) && check_pair(pair, c).is_err());
                    let artifact = config.artifact_dir.as_deref().and_then(|dir| {
                        Artifact {
                            seed: config.seed,
                            case_index: index,
                            pair,
                            delta,
                            case: shrunk.clone(),
                        }
                        .write_to(dir)
                        .map_err(|e| plateau_obs::warn!("artifact write failed: {e}"))
                        .ok()
                    });
                    report.mismatches.push(FoundMismatch {
                        case_index: index,
                        pair,
                        delta,
                        detail,
                        original_gates: case.gate_count(),
                        shrunk,
                        artifact,
                    });
                }
            }
        }
    }
    report
}

/// Outcome of replaying one artifact.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The parsed artifact.
    pub artifact: Artifact,
    /// `Some` when the divergence still reproduces, `None` when the pair
    /// now agrees (i.e. the bug is fixed).
    pub mismatch: Option<Mismatch>,
}

/// Replays a reproducer file: parses it and re-runs exactly the engine
/// pair it records.
///
/// # Errors
///
/// Returns a description of unreadable or malformed artifacts.
pub fn replay(path: &std::path::Path) -> Result<ReplayOutcome, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let artifact = Artifact::parse(&text)?;
    let mismatch = check_pair(artifact.pair, &artifact.case).err();
    Ok(ReplayOutcome { artifact, mismatch })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_artifacts(cases: usize, seed: u64, mutate: bool) -> FuzzConfig {
        FuzzConfig {
            cases,
            seed,
            max_qubits: 6,
            artifact_dir: None,
            mutate,
        }
    }

    #[test]
    fn clean_run_over_the_full_matrix() {
        let report = run(&no_artifacts(50, 0xfeed, false));
        assert!(
            report.clean(),
            "unexpected divergences: {:#?}",
            report.mismatches
        );
        assert_eq!(report.cases, 50);
        // Every always-on pair must have run on every case.
        for pair in [
            "serial-vs-parallel",
            "raw-vs-optimized",
            "qasm-roundtrip",
            "fused-vs-raw",
        ] {
            assert_eq!(report.stats[pair].comparisons, 50, "{pair}");
        }
        // The gated pairs must have run on a nontrivial subset.
        for pair in [
            "state-vs-unitary",
            "state-vs-density",
            "adjoint-vs-shift",
            "adjoint-vs-finite-diff",
        ] {
            let c = report.stats[pair].comparisons;
            assert!(c > 0 && c <= 50, "{pair}: {c}");
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(&no_artifacts(30, 7, false));
        let b = run(&no_artifacts(30, 7, false));
        assert_eq!(a.comparisons(), b.comparisons());
        assert_eq!(a.mismatches.len(), b.mismatches.len());
    }

    #[test]
    fn mutation_self_test_detects_and_shrinks() {
        let report = run(&no_artifacts(40, 0xfeed, true));
        assert!(
            !report.mismatches.is_empty(),
            "the injected bugs were never caught"
        );
        // Both injected bugs must fire, and each must shrink to a small
        // reproducer.
        for pair in [EnginePair::MutatedVsSerial, EnginePair::FusedMutatedVsSerial] {
            let best = report
                .mismatches
                .iter()
                .filter(|m| m.pair == pair)
                .map(|m| m.shrunk.gate_count())
                .min()
                .unwrap_or_else(|| panic!("{pair} was never caught"));
            assert!(best <= 8, "{pair}: smallest reproducer had {best} gates");
        }
        for m in &report.mismatches {
            assert!(matches!(
                m.pair,
                EnginePair::MutatedVsSerial | EnginePair::FusedMutatedVsSerial
            ));
            assert!(m.shrunk.gate_count() <= m.original_gates);
            // The shrunk case must itself still fail.
            assert!(crate::engines::check_pair(m.pair, &m.shrunk).is_err());
        }
    }

    #[test]
    fn replay_round_trips_a_written_artifact() {
        let dir = std::env::temp_dir().join(format!("plateau-fuzz-replay-{}", std::process::id()));
        let config = FuzzConfig {
            cases: 40,
            seed: 1,
            max_qubits: 4,
            artifact_dir: Some(dir.clone()),
            mutate: true,
        };
        let report = run(&config);
        let with_artifact = report
            .mismatches
            .iter()
            .find(|m| m.artifact.is_some() && m.pair == EnginePair::MutatedVsSerial)
            .expect("self-test must write at least one artifact");
        let outcome = replay(with_artifact.artifact.as_deref().unwrap()).expect("replay parses");
        assert_eq!(outcome.artifact.pair, EnginePair::MutatedVsSerial);
        assert!(
            outcome.mismatch.is_some(),
            "the injected bug must still reproduce from its artifact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
