//! # plateau-par
//!
//! Minimal scoped fork-join parallelism for the plateau stack, replacing
//! the `rayon` dependency with `std::thread::scope`.
//!
//! The workspace has exactly one parallelism shape: embarrassingly
//! parallel fan-out over an ensemble (e.g. 200 gradient samples per
//! variance-scan cell), where every task derives its own RNG seed so the
//! result is independent of scheduling. [`par_map_collect`] covers that
//! shape: an ordered parallel map with dynamic (atomic-counter) load
//! balancing.
//!
//! Design notes:
//!
//! - **Scoped, not pooled.** Each call spawns its workers inside a
//!   `std::thread::scope` and joins them before returning. There is no
//!   global pool, hence no shared queue — nested calls simply spawn their
//!   own scope and cannot deadlock.
//! - **Ordered.** Results come back in input order regardless of which
//!   worker ran which item, so seeded experiments stay reproducible.
//! - **Dynamic scheduling.** Workers claim items one at a time from an
//!   atomic counter; uneven per-item cost (larger circuits are slower)
//!   balances automatically.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be capped with the `PLATEAU_THREADS` environment variable
//! (`PLATEAU_THREADS=1` forces sequential execution, useful when
//! profiling or bisecting).
//!
//! # Examples
//!
//! ```
//! use plateau_par::par_map_collect;
//!
//! let squares = par_map_collect(0..8u64, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel call will use for `n_items`:
/// `min(available_parallelism, PLATEAU_THREADS, n_items)`, at least 1.
pub fn worker_count(n_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap = std::env::var("PLATEAU_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(usize::MAX);
    hw.min(cap).min(n_items).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Spawns up to [`worker_count`] scoped threads; each claims items from a
/// shared atomic counter, computes `f`, and stashes `(index, result)`
/// locally. After the join, results are reassembled in input order. With
/// one worker (or one item) no thread is spawned at all and `f` runs on
/// the caller's thread.
///
/// `f` may itself call `par_map_collect`: nested calls open their own
/// scope, so there is no pool to exhaust and no deadlock.
///
/// # Panics
///
/// If `f` panics on any item, the panic is propagated to the caller after
/// all workers have stopped.
pub fn par_map_collect<I, T, U, F>(items: I, f: F) -> Vec<U>
where
    I: IntoIterator<Item = T>,
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    let n = items.len();
    let workers = worker_count(n);
    plateau_obs::counter!("par.batches").inc();
    plateau_obs::gauge!("par.workers").set(workers as f64);
    if workers <= 1 {
        return items.into_iter().map(|item| run_task(&f, item)).collect();
    }

    // Hand items out through a Mutex<Vec<Option<T>>>: the atomic counter
    // assigns indices, the mutex slot transfers ownership of the item.
    // Contention is negligible against the per-item work this crate is
    // used for (circuit simulation, not arithmetic).
    let slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);

    let mut buckets: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    let mut first_panic = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return local;
                    }
                    plateau_obs::gauge!("par.queue_depth").set((n - (i + 1).min(n)) as f64);
                    let item = slots
                        .lock()
                        .expect("plateau-par: a sibling worker panicked")[i]
                        .take()
                        .expect("plateau-par: item claimed twice");
                    local.push((i, run_task(&f, item)));
                }
            }));
        }
        // Join every worker before propagating, so the scope never has to
        // re-raise a second panic while the first is unwinding.
        for h in handles {
            match h.join() {
                Ok(local) => buckets.push(local),
                Err(payload) if first_panic.is_none() => first_panic = Some(payload),
                Err(_) => {}
            }
        }
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }

    let mut pairs: Vec<(usize, U)> = buckets.into_iter().flatten().collect();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// Runs one task, bumping `par.tasks` and (when metrics are on) timing it
/// into the `par.task_ns` histogram. The clock is only read while metrics
/// are enabled, so the disabled path adds a single load + branch per item.
#[inline]
fn run_task<T, U>(f: &impl Fn(T) -> U, item: T) -> U {
    plateau_obs::counter!("par.tasks").inc();
    if plateau_obs::metrics_enabled() {
        let t0 = std::time::Instant::now();
        let out = f(item);
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        plateau_obs::histogram!("par.task_ns").record(ns);
        out
    } else {
        f(item)
    }
}

/// Runs `f` over `0..n` in parallel — the index-based convenience form
/// used by the ensemble harnesses.
///
/// # Examples
///
/// ```
/// let doubled = plateau_par::par_map_indexed(4, |i| 2 * i);
/// assert_eq!(doubled, vec![0, 2, 4, 6]);
/// ```
pub fn par_map_indexed<U: Send, F: Fn(usize) -> U + Sync>(n: usize, f: F) -> Vec<U> {
    par_map_collect(0..n, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn matches_sequential_map_over_1000_items() {
        let items: Vec<u64> = (0..1_000).collect();
        let expected: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(i) ^ 0xabcd).collect();
        let got = par_map_collect(items, |i| i.wrapping_mul(i) ^ 0xabcd);
        assert_eq!(got, expected);
    }

    #[test]
    fn results_are_in_input_order_under_skewed_workloads() {
        // Early items sleep, late items return instantly: completion order
        // is the reverse of input order, output order must not be.
        let got = par_map_indexed(32, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn nested_invocation_does_not_deadlock() {
        let table = par_map_indexed(8, |i| par_map_indexed(8, move |j| i * 8 + j));
        for (i, row) in table.iter().enumerate() {
            assert_eq!(*row, (i * 8..i * 8 + 8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = par_map_collect(Vec::<u32>::new(), |x| x + 1);
        assert!(empty.is_empty());
        assert_eq!(par_map_collect(vec![41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn non_copy_items_are_moved_into_the_closure() {
        let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let got = par_map_collect(items, |s| s.len());
        assert_eq!(got.len(), 100);
        assert_eq!(got[7], "item-7".len());
    }

    #[test]
    fn result_collection_short_circuits_errors_like_the_harness_does() {
        // The variance harness maps to Result and collects afterward; make
        // sure the pattern composes.
        let out: Result<Vec<usize>, String> =
            par_map_indexed(100, |i| if i == 63 { Err(format!("boom at {i}")) } else { Ok(i) })
                .into_iter()
                .collect();
        assert_eq!(out.unwrap_err(), "boom at 63");
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        if worker_count(64) < 2 {
            return; // single-core CI — nothing to assert
        }
        let seen_other_thread = AtomicBool::new(false);
        let caller = std::thread::current().id();
        par_map_indexed(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            if std::thread::current().id() != caller {
                seen_other_thread.store(true, Ordering::Relaxed);
            }
        });
        assert!(seen_other_thread.load(Ordering::Relaxed));
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        par_map_indexed(16, |i| {
            if i == 5 {
                panic!("worker boom");
            }
            i
        });
    }

    #[test]
    fn worker_count_respects_item_count() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000) >= 1);
    }
}
