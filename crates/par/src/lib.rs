//! # plateau-par
//!
//! Minimal scoped fork-join parallelism for the plateau stack, replacing
//! the `rayon` dependency with `std::thread::scope`.
//!
//! The workspace has exactly one parallelism shape: embarrassingly
//! parallel fan-out over an ensemble (e.g. 200 gradient samples per
//! variance-scan cell), where every task derives its own RNG seed so the
//! result is independent of scheduling. [`par_map_collect`] covers that
//! shape: an ordered parallel map with dynamic (atomic-counter) load
//! balancing.
//!
//! Design notes:
//!
//! - **Scoped, not pooled.** Each call spawns its workers inside a
//!   `std::thread::scope` and joins them before returning. There is no
//!   global pool, hence no shared queue — nested calls simply spawn their
//!   own scope and cannot deadlock.
//! - **Ordered.** Results come back in input order regardless of which
//!   worker ran which item, so seeded experiments stay reproducible.
//! - **Dynamic scheduling.** Workers claim items one at a time from an
//!   atomic counter; uneven per-item cost (larger circuits are slower)
//!   balances automatically.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be capped with the `PLATEAU_THREADS` environment variable
//! (`PLATEAU_THREADS=1` forces sequential execution, useful when
//! profiling or bisecting).
//!
//! # Examples
//!
//! ```
//! use plateau_par::par_map_collect;
//!
//! let squares = par_map_collect(0..8u64, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel call will use for `n_items`:
/// `min(available_parallelism, PLATEAU_THREADS, n_items)`, at least 1.
pub fn worker_count(n_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap = std::env::var("PLATEAU_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(usize::MAX);
    hw.min(cap).min(n_items).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Spawns up to [`worker_count`] scoped threads; each claims items from a
/// shared atomic counter, computes `f`, and stashes `(index, result)`
/// locally. After the join, results are reassembled in input order. With
/// one worker (or one item) no thread is spawned at all and `f` runs on
/// the caller's thread.
///
/// `f` may itself call `par_map_collect`: nested calls open their own
/// scope, so there is no pool to exhaust and no deadlock.
///
/// # Panics
///
/// If `f` panics on any item, the panic is propagated to the caller after
/// all workers have stopped.
pub fn par_map_collect<I, T, U, F>(items: I, f: F) -> Vec<U>
where
    I: IntoIterator<Item = T>,
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    let n = items.len();
    let workers = worker_count(n);
    plateau_obs::counter!("par.batches").inc();
    plateau_obs::gauge!("par.workers").set(workers as f64);
    if workers <= 1 {
        return items.into_iter().map(|item| run_task(&f, item)).collect();
    }

    // Hand items out through a Mutex<Vec<Option<T>>>: the atomic counter
    // assigns indices, the mutex slot transfers ownership of the item.
    // Contention is negligible against the per-item work this crate is
    // used for (circuit simulation, not arithmetic).
    let slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);

    let mut buckets: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    let mut first_panic = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return local;
                    }
                    plateau_obs::gauge!("par.queue_depth").set((n - (i + 1).min(n)) as f64);
                    let item = slots
                        .lock()
                        .expect("plateau-par: a sibling worker panicked")[i]
                        .take()
                        .expect("plateau-par: item claimed twice");
                    local.push((i, run_task(&f, item)));
                }
            }));
        }
        // Join every worker before propagating, so the scope never has to
        // re-raise a second panic while the first is unwinding.
        for h in handles {
            match h.join() {
                Ok(local) => buckets.push(local),
                Err(payload) if first_panic.is_none() => first_panic = Some(payload),
                Err(_) => {}
            }
        }
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }

    let mut pairs: Vec<(usize, U)> = buckets.into_iter().flatten().collect();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// Runs one task, bumping `par.tasks` and (when metrics are on) timing it
/// into the `par.task_ns` histogram. The clock is only read while metrics
/// are enabled, so the disabled path adds a single load + branch per item.
#[inline]
fn run_task<T, U>(f: &impl Fn(T) -> U, item: T) -> U {
    plateau_obs::counter!("par.tasks").inc();
    if plateau_obs::metrics_enabled() {
        let t0 = std::time::Instant::now();
        let out = f(item);
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        plateau_obs::histogram!("par.task_ns").record(ns);
        out
    } else {
        f(item)
    }
}

/// Runs `f` over `0..n` in parallel — the index-based convenience form
/// used by the ensemble harnesses.
///
/// # Examples
///
/// ```
/// let doubled = plateau_par::par_map_indexed(4, |i| 2 * i);
/// assert_eq!(doubled, vec![0, 2, 4, 6]);
/// ```
pub fn par_map_indexed<U: Send, F: Fn(usize) -> U + Sync>(n: usize, f: F) -> Vec<U> {
    par_map_collect(0..n, f)
}

/// Like [`par_map_indexed`], but each worker owns a reusable **scratch
/// value** built once by `init` and threaded through every item that
/// worker claims — the allocation shape batched circuit evaluation needs
/// (one statevector per worker, not one per ensemble member).
///
/// `init` runs on the worker's own thread (at most [`worker_count`]
/// times; exactly once on the serial path), so the scratch value never
/// crosses threads and needs no `Send` bound. Results come back in input
/// order, and the same counters/gauges as [`par_map_collect`] are
/// emitted (`par.batches`, `par.tasks`, `par.workers`,
/// `par.queue_depth`).
///
/// **Determinism contract:** `f` must fully determine its output from
/// `(scratch-after-init-or-any-prior-item, index)` by overwriting — not
/// accumulating into — the scratch; then the output is independent of
/// which worker ran which item and of the worker count.
///
/// # Panics
///
/// If `init` or `f` panics, the panic is propagated to the caller after
/// all workers have stopped.
///
/// # Examples
///
/// ```
/// // One reusable buffer per worker instead of one per item.
/// let sums = plateau_par::par_map_scratch(
///     4,
///     || vec![0u64; 8],
///     |buf, i| {
///         for (k, slot) in buf.iter_mut().enumerate() {
///             *slot = (i as u64) * k as u64;
///         }
///         buf.iter().sum::<u64>()
///     },
/// );
/// assert_eq!(sums, vec![0, 28, 56, 84]);
/// ```
pub fn par_map_scratch<S, U, FI, F>(n: usize, init: FI, f: F) -> Vec<U>
where
    U: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    let workers = worker_count(n);
    plateau_obs::counter!("par.batches").inc();
    plateau_obs::gauge!("par.workers").set(workers as f64);
    if workers <= 1 {
        let mut scratch = init();
        return (0..n).map(|i| run_task_scratch(&f, &mut scratch, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    let mut first_panic = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut scratch = init();
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return local;
                    }
                    plateau_obs::gauge!("par.queue_depth").set((n - (i + 1).min(n)) as f64);
                    local.push((i, run_task_scratch(&f, &mut scratch, i)));
                }
            }));
        }
        // Join every worker before propagating, so the scope never has to
        // re-raise a second panic while the first is unwinding.
        for h in handles {
            match h.join() {
                Ok(local) => buckets.push(local),
                Err(payload) if first_panic.is_none() => first_panic = Some(payload),
                Err(_) => {}
            }
        }
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }

    let mut pairs: Vec<(usize, U)> = buckets.into_iter().flatten().collect();
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// [`run_task`] for the scratch-threading form: same `par.tasks` counter
/// and optional `par.task_ns` timing, with the worker's scratch passed
/// through.
#[inline]
fn run_task_scratch<S, U>(f: &impl Fn(&mut S, usize) -> U, scratch: &mut S, i: usize) -> U {
    plateau_obs::counter!("par.tasks").inc();
    if plateau_obs::metrics_enabled() {
        let t0 = std::time::Instant::now();
        let out = f(scratch, i);
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        plateau_obs::histogram!("par.task_ns").record(ns);
        out
    } else {
        f(scratch, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn matches_sequential_map_over_1000_items() {
        let items: Vec<u64> = (0..1_000).collect();
        let expected: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(i) ^ 0xabcd).collect();
        let got = par_map_collect(items, |i| i.wrapping_mul(i) ^ 0xabcd);
        assert_eq!(got, expected);
    }

    #[test]
    fn results_are_in_input_order_under_skewed_workloads() {
        // Early items sleep, late items return instantly: completion order
        // is the reverse of input order, output order must not be.
        let got = par_map_indexed(32, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn nested_invocation_does_not_deadlock() {
        let table = par_map_indexed(8, |i| par_map_indexed(8, move |j| i * 8 + j));
        for (i, row) in table.iter().enumerate() {
            assert_eq!(*row, (i * 8..i * 8 + 8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = par_map_collect(Vec::<u32>::new(), |x| x + 1);
        assert!(empty.is_empty());
        assert_eq!(par_map_collect(vec![41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn non_copy_items_are_moved_into_the_closure() {
        let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let got = par_map_collect(items, |s| s.len());
        assert_eq!(got.len(), 100);
        assert_eq!(got[7], "item-7".len());
    }

    #[test]
    fn result_collection_short_circuits_errors_like_the_harness_does() {
        // The variance harness maps to Result and collects afterward; make
        // sure the pattern composes.
        let out: Result<Vec<usize>, String> =
            par_map_indexed(100, |i| if i == 63 { Err(format!("boom at {i}")) } else { Ok(i) })
                .into_iter()
                .collect();
        assert_eq!(out.unwrap_err(), "boom at 63");
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        if worker_count(64) < 2 {
            return; // single-core CI — nothing to assert
        }
        let seen_other_thread = AtomicBool::new(false);
        let caller = std::thread::current().id();
        par_map_indexed(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            if std::thread::current().id() != caller {
                seen_other_thread.store(true, Ordering::Relaxed);
            }
        });
        assert!(seen_other_thread.load(Ordering::Relaxed));
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        par_map_indexed(16, |i| {
            if i == 5 {
                panic!("worker boom");
            }
            i
        });
    }

    #[test]
    fn scratch_map_matches_indexed_map() {
        let expected = par_map_indexed(257, |i| (i as u64).wrapping_mul(31) ^ 7);
        let got = par_map_scratch(
            257,
            || 0u64,
            |scratch, i| {
                *scratch = (i as u64).wrapping_mul(31) ^ 7;
                *scratch
            },
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn scratch_is_initialized_at_most_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let out = par_map_scratch(
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::with_capacity(4)
            },
            |buf, i| {
                buf.clear();
                buf.push(i);
                buf[0]
            },
        );
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        let n_inits = inits.load(Ordering::Relaxed);
        assert!(n_inits >= 1, "at least one scratch");
        assert!(
            n_inits <= worker_count(64),
            "{n_inits} inits exceeds the worker count {}",
            worker_count(64)
        );
    }

    #[test]
    fn scratch_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = par_map_scratch(0, || (), |(), i| i as u32);
        assert!(empty.is_empty());
        assert_eq!(par_map_scratch(1, || 5u32, |s, i| *s + i as u32), vec![5]);
    }

    #[test]
    #[should_panic(expected = "scratch boom")]
    fn scratch_worker_panic_propagates() {
        par_map_scratch(
            16,
            || (),
            |(), i| {
                if i == 3 {
                    panic!("scratch boom");
                }
                i
            },
        );
    }

    #[test]
    fn worker_count_respects_item_count() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000) >= 1);
    }
}
