//! # plateau-qml
//!
//! The "quantum machine learning" of the paper's title as a working
//! pipeline: a data re-uploading variational classifier over the plateau
//! stack, with synthetic datasets and exact adjoint training — the third
//! application domain (after identity learning and VQE) for the
//! initialization study.
//!
//! - [`dataset`]: two-moons and Gaussian-blob generators plus a
//!   train/test split.
//! - [`classifier`]: the re-uploading architecture, masked-gradient
//!   training, and accuracy evaluation.
//!
//! # Examples
//!
//! ```
//! use plateau_core::init::{FanMode, InitStrategy};
//! use plateau_core::optim::Adam;
//! use plateau_qml::{classifier::Classifier, dataset::gaussian_blobs};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let data = gaussian_blobs(40, 0.15, &mut rng);
//! let model = Classifier::new(2, 2, 2)?;
//! let w0 = model.init_weights(InitStrategy::XavierNormal, FanMode::TensorShape, &mut rng)?;
//! let mut adam = Adam::new(0.1)?;
//! let fit = model.fit(w0, &data, &mut adam, 30)?;
//! assert!(fit.losses.last().unwrap() < &fit.losses[0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod dataset;

pub use classifier::{Classifier, FitResult};
pub use dataset::{gaussian_blobs, train_test_split, two_moons, Sample};
