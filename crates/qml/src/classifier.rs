//! A data re-uploading variational classifier (Pérez-Salinas et al. 2020)
//! built on the plateau stack — the "QML circuit" of the paper's title as
//! an end-to-end supervised-learning pipeline.
//!
//! Architecture per layer: an encoding sub-layer `RY(x_{q mod d})` on each
//! qubit (data re-uploaded every layer), trainable `RX·RY` on each qubit,
//! and a CZ entangling chain. The decision function is `⟨Z₀⟩` with class
//! boundary at zero; training minimizes the mean squared error against
//! ±1 targets with exact adjoint gradients, masked so only the trainable
//! weights move (data slots stay pinned to the sample's features).
//!
//! # Examples
//!
//! ```
//! use plateau_core::init::{FanMode, InitStrategy};
//! use plateau_core::optim::Adam;
//! use plateau_qml::classifier::Classifier;
//! use plateau_qml::dataset::gaussian_blobs;
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(2);
//! let data = gaussian_blobs(60, 0.15, &mut rng);
//! let mut model = Classifier::new(2, 2, 2)?;
//! let w0 = model.init_weights(InitStrategy::XavierNormal, FanMode::TensorShape, &mut rng)?;
//! let mut adam = Adam::new(0.1)?;
//! let trained = model.fit(w0, &data, &mut adam, 40)?;
//! assert!(model.accuracy(&trained.weights, &data)? > 0.9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::dataset::Sample;
use plateau_core::error::CoreError;
use plateau_core::init::{FanMode, InitStrategy, LayerShape};
use plateau_core::optim::Optimizer;
use plateau_grad::BatchExecutor;
use plateau_sim::{Circuit, Observable, Pauli, PauliString};
use plateau_rng::Rng;

/// A data re-uploading classifier model: fixed architecture, trainable
/// weight vector supplied per call.
#[derive(Debug, Clone)]
pub struct Classifier {
    circuit: Circuit,
    /// `(param index, feature index)` for every encoding slot.
    data_slots: Vec<(usize, usize)>,
    /// Parameter indices of the trainable weights, in order.
    weight_slots: Vec<usize>,
    shape: LayerShape,
    observable: Observable,
    n_features: usize,
}

/// Output of [`Classifier::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// Trained weights (length = [`Classifier::n_weights`]).
    pub weights: Vec<f64>,
    /// Mean-squared-error loss after each epoch (`epochs + 1` entries,
    /// starting with the untrained loss).
    pub losses: Vec<f64>,
}

impl Classifier {
    /// Builds the architecture: `layers` re-uploading layers over
    /// `n_qubits` qubits for `n_features`-dimensional inputs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero-sized dimensions.
    pub fn new(n_qubits: usize, layers: usize, n_features: usize) -> Result<Classifier, CoreError> {
        if n_qubits == 0 || layers == 0 || n_features == 0 {
            return Err(CoreError::InvalidConfig(
                "classifier dimensions must be nonzero".into(),
            ));
        }
        let mut circuit = Circuit::new(n_qubits)?;
        let mut data_slots = Vec::new();
        let mut weight_slots = Vec::new();
        for _ in 0..layers {
            // Encoding sub-layer: feature q mod d on qubit q, scaled by π
            // at evaluation time so the full feature range spans a
            // half-turn.
            for q in 0..n_qubits {
                circuit.ry(q)?;
                data_slots.push((circuit.n_params() - 1, q % n_features));
            }
            // Trainable sub-layer.
            for q in 0..n_qubits {
                circuit.rx(q)?;
                weight_slots.push(circuit.n_params() - 1);
                circuit.ry(q)?;
                weight_slots.push(circuit.n_params() - 1);
            }
            for q in 0..n_qubits.saturating_sub(1) {
                circuit.cz(q, q + 1)?;
            }
        }
        let shape = LayerShape::new(n_qubits, 2 * n_qubits, layers)?;
        let observable = Observable::pauli(PauliString::single(n_qubits, 0, Pauli::Z)?)?;
        Ok(Classifier {
            circuit,
            data_slots,
            weight_slots,
            shape,
            observable,
            n_features,
        })
    }

    /// Number of trainable weights.
    pub fn n_weights(&self) -> usize {
        self.weight_slots.len()
    }

    /// The underlying circuit (data slots + weight slots as free params).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Draws initial weights with one of the paper's strategies.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub fn init_weights<R: Rng>(
        &self,
        strategy: InitStrategy,
        fan_mode: FanMode,
        rng: &mut R,
    ) -> Result<Vec<f64>, CoreError> {
        strategy.sample_params(&self.shape, fan_mode, rng)
    }

    fn full_params(&self, weights: &[f64], features: &[f64]) -> Result<Vec<f64>, CoreError> {
        if weights.len() != self.weight_slots.len() {
            return Err(CoreError::InvalidConfig(format!(
                "expected {} weights, got {}",
                self.weight_slots.len(),
                weights.len()
            )));
        }
        if features.len() != self.n_features {
            return Err(CoreError::InvalidConfig(format!(
                "expected {} features, got {}",
                self.n_features,
                features.len()
            )));
        }
        let mut params = vec![0.0; self.circuit.n_params()];
        for (slot, feature_idx) in &self.data_slots {
            params[*slot] = std::f64::consts::PI * features[*feature_idx];
        }
        for (w, slot) in weights.iter().zip(self.weight_slots.iter()) {
            params[*slot] = *w;
        }
        Ok(params)
    }

    /// The raw decision value `⟨Z₀⟩ ∈ [−1, 1]` for one sample.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for wrong-length inputs.
    pub fn decision_value(&self, weights: &[f64], features: &[f64]) -> Result<f64, CoreError> {
        let params = self.full_params(weights, features)?;
        let state = self.circuit.run(&params)?;
        Ok(self.observable.expectation(&state)?)
    }

    /// Decision values for a whole dataset through one batched sweep:
    /// the circuit is compiled once and every sample's evaluation reuses
    /// a per-worker scratch statevector instead of allocating its own.
    fn decision_values(&self, weights: &[f64], data: &[Sample]) -> Result<Vec<f64>, CoreError> {
        let sets = data
            .iter()
            .map(|s| self.full_params(weights, &s.features))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchExecutor::new(&self.circuit).expectation_many(&sets, &self.observable)?)
    }

    /// Predicted class: `⟨Z₀⟩ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for wrong-length inputs.
    pub fn predict(&self, weights: &[f64], features: &[f64]) -> Result<bool, CoreError> {
        Ok(self.decision_value(weights, features)? > 0.0)
    }

    /// Mean squared error against ±1 targets over a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for wrong-length inputs or an
    /// empty dataset.
    pub fn loss(&self, weights: &[f64], data: &[Sample]) -> Result<f64, CoreError> {
        if data.is_empty() {
            return Err(CoreError::InvalidConfig("dataset must be non-empty".into()));
        }
        let values = self.decision_values(weights, data)?;
        let mut total = 0.0;
        for (sample, value) in data.iter().zip(&values) {
            let target = if sample.label { 1.0 } else { -1.0 };
            total += (value - target) * (value - target);
        }
        Ok(total / data.len() as f64)
    }

    /// Classification accuracy over a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for wrong-length inputs or an
    /// empty dataset.
    pub fn accuracy(&self, weights: &[f64], data: &[Sample]) -> Result<f64, CoreError> {
        if data.is_empty() {
            return Err(CoreError::InvalidConfig("dataset must be non-empty".into()));
        }
        let values = self.decision_values(weights, data)?;
        let correct = data
            .iter()
            .zip(&values)
            .filter(|(sample, value)| (**value > 0.0) == sample.label)
            .count();
        Ok(correct as f64 / data.len() as f64)
    }

    /// Full-batch gradient of the MSE loss with respect to the weights
    /// (adjoint gradients per sample, chain-ruled and masked to weight
    /// slots).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for wrong-length inputs or an
    /// empty dataset.
    pub fn loss_gradient(&self, weights: &[f64], data: &[Sample]) -> Result<Vec<f64>, CoreError> {
        if data.is_empty() {
            return Err(CoreError::InvalidConfig("dataset must be non-empty".into()));
        }
        let sets = data
            .iter()
            .map(|s| self.full_params(weights, &s.features))
            .collect::<Result<Vec<_>, _>>()?;
        // One executor (one compile) feeds both sweeps; the fold below
        // runs in sample order so the result matches the old
        // sample-at-a-time loop exactly.
        let mut ex = BatchExecutor::new(&self.circuit);
        let values = ex.expectation_many(&sets, &self.observable)?;
        let fulls = ex.adjoint_gradient_many(&sets, &self.observable)?;
        let mut grad = vec![0.0; self.weight_slots.len()];
        for ((sample, value), full) in data.iter().zip(&values).zip(&fulls) {
            let target = if sample.label { 1.0 } else { -1.0 };
            let outer = 2.0 * (value - target);
            for (g, slot) in grad.iter_mut().zip(self.weight_slots.iter()) {
                *g += outer * full[*slot];
            }
        }
        let n = data.len() as f64;
        for g in &mut grad {
            *g /= n;
        }
        Ok(grad)
    }

    /// Trains for `epochs` full-batch steps with the given optimizer.
    ///
    /// # Errors
    ///
    /// Propagates gradient and optimizer errors.
    pub fn fit(
        &self,
        initial_weights: Vec<f64>,
        data: &[Sample],
        optimizer: &mut dyn Optimizer,
        epochs: usize,
    ) -> Result<FitResult, CoreError> {
        let mut weights = initial_weights;
        let mut losses = Vec::with_capacity(epochs + 1);
        losses.push(self.loss(&weights, data)?);

        // Gradient-dynamics telemetry, only when the experiment ledger is
        // on: per-epoch loss / weight-gradient norm / BP score /
        // per-layer weight-gradient variances, recorded as a `"classify"`
        // ledger run. With the ledger off this block costs nothing.
        let ppl = self.shape.params_per_layer();
        let n_layers = self.shape.layers();
        let mut series = if plateau_obs::ledger_enabled() {
            let mut cols = vec![
                "loss".to_string(),
                "grad_norm".to_string(),
                "bp_score".to_string(),
            ];
            for i in 0..n_layers {
                cols.push(format!("layer_var_{i}"));
            }
            Some(plateau_obs::TimeSeries::new(cols, 256))
        } else {
            None
        };
        let mut score =
            plateau_core::train::PlateauScore::new(plateau_core::train::BP_SCORE_WINDOW);
        let mut row: Vec<f64> = Vec::new();
        let mut layer_vars: Vec<f64> = Vec::new();

        for epoch in 0..epochs {
            let grad = self.loss_gradient(&weights, data)?;
            if let Some(series) = series.as_mut() {
                let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
                let bp = score.observe(&grad);
                row.clear();
                row.push(losses[epoch]);
                row.push(norm);
                row.push(bp);
                plateau_grad::layer_grad_variances_into(&grad, ppl, &mut layer_vars);
                row.extend_from_slice(&layer_vars);
                series.push(epoch as f64, &row);
            }
            optimizer.step(&mut weights, &grad)?;
            losses.push(self.loss(&weights, data)?);
        }

        let result = FitResult { weights, losses };
        if let Some(series) = series {
            use plateau_obs::json::Json;
            let rec = plateau_obs::RunRecord::new("classify")
                .config("qubits", Json::from(self.circuit.n_qubits()))
                .config("layers", Json::from(n_layers))
                .config("features", Json::from(self.n_features))
                .config("epochs", Json::from(epochs))
                .config("samples", Json::from(data.len()))
                .metric("initial_loss", result.losses[0])
                .metric("final_loss", *result.losses.last().unwrap());
            if let Err(e) = plateau_obs::record_run(&rec, Some(&series)) {
                plateau_obs::warn!("classify: ledger write failed: {e}");
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{gaussian_blobs, train_test_split, two_moons};
    use plateau_core::optim::Adam;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    #[test]
    fn architecture_counts() {
        let m = Classifier::new(3, 2, 2).unwrap();
        // Per layer: 3 data slots + 6 weights; 2 layers.
        assert_eq!(m.n_weights(), 12);
        assert_eq!(m.circuit().n_params(), 18);
        assert!(Classifier::new(0, 1, 1).is_err());
        assert!(Classifier::new(1, 0, 1).is_err());
        assert!(Classifier::new(1, 1, 0).is_err());
    }

    #[test]
    fn decision_is_bounded_and_deterministic() {
        let m = Classifier::new(2, 2, 2).unwrap();
        let w = vec![0.3; m.n_weights()];
        let v1 = m.decision_value(&w, &[0.5, -0.5]).unwrap();
        let v2 = m.decision_value(&w, &[0.5, -0.5]).unwrap();
        assert_eq!(v1, v2);
        assert!(v1.abs() <= 1.0);
        assert!(m.decision_value(&w, &[0.5]).is_err());
        assert!(m.decision_value(&[0.1], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn fit_appends_classify_ledger_record() {
        let _guard = plateau_obs::test_lock();
        let dir =
            std::env::temp_dir().join(format!("plateau_qml_ledger_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        plateau_obs::set_ledger_dir(Some(&dir));

        let m = Classifier::new(2, 1, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data = gaussian_blobs(6, 0.2, &mut rng);
        let w = vec![0.1; m.n_weights()];
        let mut adam = Adam::new(0.1).unwrap();
        let fitted = m.fit(w, &data, &mut adam, 2).unwrap();

        let text = std::fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
        let rec = plateau_obs::json::Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(rec.get("command").unwrap().as_str(), Some("classify"));
        assert_eq!(
            rec.get("metrics").unwrap().get("final_loss").unwrap().as_f64(),
            fitted.losses.last().copied()
        );
        let rel = rec.get("series").unwrap().as_str().unwrap().to_string();
        let series = plateau_obs::TimeSeries::read_jsonl(&dir.join(rel)).unwrap();
        assert_eq!(series.len(), 2, "one row per epoch");
        assert!(series.columns().iter().any(|c| c == "layer_var_0"));

        plateau_obs::set_ledger_dir(None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gradient_matches_finite_difference_of_loss() {
        let m = Classifier::new(2, 1, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let data = gaussian_blobs(8, 0.2, &mut rng);
        let w: Vec<f64> = (0..m.n_weights()).map(|i| 0.2 * i as f64 - 0.3).collect();
        let grad = m.loss_gradient(&w, &data).unwrap();
        let eps = 1e-5;
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let fd = (m.loss(&wp, &data).unwrap() - m.loss(&wm, &data).unwrap()) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-7,
                "weight {i}: analytic {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = gaussian_blobs(60, 0.15, &mut rng);
        let m = Classifier::new(2, 2, 2).unwrap();
        let w0 = m
            .init_weights(InitStrategy::XavierNormal, FanMode::TensorShape, &mut rng)
            .unwrap();
        let mut adam = Adam::new(0.1).unwrap();
        let fit = m.fit(w0, &data, &mut adam, 40).unwrap();
        assert!(fit.losses.last().unwrap() < &fit.losses[0]);
        let acc = m.accuracy(&fit.weights, &data).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn learns_two_moons_beyond_linear_baseline() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = two_moons(80, 0.05, &mut rng);
        let (train, test) = train_test_split(data, 0.75);
        let m = Classifier::new(3, 3, 2).unwrap();
        let w0 = m
            .init_weights(InitStrategy::XavierNormal, FanMode::TensorShape, &mut rng)
            .unwrap();
        let mut adam = Adam::new(0.1).unwrap();
        let fit = m.fit(w0, &train, &mut adam, 60).unwrap();
        let train_acc = m.accuracy(&fit.weights, &train).unwrap();
        let test_acc = m.accuracy(&fit.weights, &test).unwrap();
        assert!(train_acc > 0.85, "train accuracy {train_acc}");
        assert!(test_acc > 0.75, "test accuracy {test_acc}");
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let m = Classifier::new(2, 1, 2).unwrap();
        let w = vec![0.0; m.n_weights()];
        assert!(m.loss(&w, &[]).is_err());
        assert!(m.accuracy(&w, &[]).is_err());
        assert!(m.loss_gradient(&w, &[]).is_err());
    }
}
