//! Synthetic two-class datasets for the variational classifier.
//!
//! Two standard shapes, both 2-D and scaled into `[−1, 1]²` so they feed
//! directly into angle encoding:
//!
//! - [`two_moons`]: the interleaved half-circles benchmark (not linearly
//!   separable).
//! - [`gaussian_blobs`]: two isotropic clusters (linearly separable —
//!   the sanity-check dataset).
//!
//! # Examples
//!
//! ```
//! use plateau_qml::dataset::two_moons;
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = two_moons(100, 0.05, &mut rng);
//! assert_eq!(data.len(), 100);
//! assert!(data.iter().all(|s| s.features.iter().all(|x| x.abs() <= 1.0)));
//! ```

use plateau_rng::Rng;
use std::f64::consts::PI;

/// One labelled sample: a feature vector and a binary label.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature values, each in `[−1, 1]`.
    pub features: Vec<f64>,
    /// Class label.
    pub label: bool,
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller; cheap and fine for dataset jitter.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Generates the interleaved two-moons dataset with Gaussian `noise`
/// (standard deviation in raw units), scaled into `[−1, 1]²`.
pub fn two_moons<R: Rng>(n_samples: usize, noise: f64, rng: &mut R) -> Vec<Sample> {
    let mut out = Vec::with_capacity(n_samples);
    for i in 0..n_samples {
        let label = i % 2 == 0;
        let t = rng.gen::<f64>() * PI;
        // Upper moon centred at (0, 0); lower moon shifted to interleave.
        let (mut x, mut y) = if label {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        x += noise * gaussian(rng);
        y += noise * gaussian(rng);
        // Raw ranges: x ∈ [−1, 2], y ∈ [−0.5, 1]; affine-map into [−1, 1].
        let fx = (x - 0.5) / 1.5;
        let fy = (y - 0.25) / 0.75;
        out.push(Sample {
            features: vec![fx.clamp(-1.0, 1.0), fy.clamp(-1.0, 1.0)],
            label,
        });
    }
    out
}

/// Generates two isotropic Gaussian blobs centred at `(∓0.5, ∓0.5)` with
/// the given standard deviation, clipped into `[−1, 1]²`.
pub fn gaussian_blobs<R: Rng>(n_samples: usize, std: f64, rng: &mut R) -> Vec<Sample> {
    let mut out = Vec::with_capacity(n_samples);
    for i in 0..n_samples {
        let label = i % 2 == 0;
        let centre = if label { 0.5 } else { -0.5 };
        let x = (centre + std * gaussian(rng)).clamp(-1.0, 1.0);
        let y = (centre + std * gaussian(rng)).clamp(-1.0, 1.0);
        out.push(Sample {
            features: vec![x, y],
            label,
        });
    }
    out
}

/// Splits a dataset into `(train, test)` with the first
/// `⌈ratio·len⌉` samples in train (callers shuffle via their RNG-seeded
/// generation order; generation already interleaves classes).
///
/// # Panics
///
/// Panics unless `0 < ratio < 1`.
pub fn train_test_split(data: Vec<Sample>, ratio: f64) -> (Vec<Sample>, Vec<Sample>) {
    assert!(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1)");
    let cut = ((data.len() as f64) * ratio).ceil() as usize;
    let mut train = data;
    let test = train.split_off(cut.min(train.len()));
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    #[test]
    fn moons_are_balanced_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = two_moons(200, 0.05, &mut rng);
        assert_eq!(data.len(), 200);
        let positives = data.iter().filter(|s| s.label).count();
        assert_eq!(positives, 100);
        for s in &data {
            assert_eq!(s.features.len(), 2);
            assert!(s.features.iter().all(|x| x.abs() <= 1.0));
        }
    }

    #[test]
    fn blobs_are_roughly_separable() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = gaussian_blobs(400, 0.15, &mut rng);
        // The diagonal rule x + y > 0 should classify almost everything.
        let correct = data
            .iter()
            .filter(|s| (s.features[0] + s.features[1] > 0.0) == s.label)
            .count();
        assert!(correct > 380, "separable check failed: {correct}/400");
    }

    #[test]
    fn moons_are_not_linearly_separable_by_the_diagonal() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = two_moons(400, 0.02, &mut rng);
        let correct = data
            .iter()
            .filter(|s| (s.features[0] + s.features[1] > 0.0) == s.label)
            .count();
        let accuracy = correct as f64 / 400.0;
        assert!(
            (0.2..0.95).contains(&accuracy),
            "moons should defeat a fixed linear rule: {accuracy}"
        );
    }

    #[test]
    fn split_respects_ratio() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = two_moons(100, 0.05, &mut rng);
        let (train, test) = train_test_split(data, 0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn split_rejects_bad_ratio() {
        let _ = train_test_split(vec![], 1.5);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = two_moons(50, 0.1, &mut StdRng::seed_from_u64(9));
        let b = two_moons(50, 0.1, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
