//! The gradient-variance analysis harness — the paper's central experiment
//! (§IV-C, Fig 5a, and the headline improvement percentages).
//!
//! For each qubit count `q` and each initialization strategy `t`, the
//! harness builds `n_circuits` random HEA circuits (Eq. 2), samples
//! parameters with `t`, computes `∂C/∂θ_last`, and records
//! `V_{q,t} = Var(G_{q,t})`. Fitting `ln V` against `q` gives each
//! strategy's *variance decay rate*; the improvement of strategy `t` over
//! the random baseline is `(|b_random| − |b_t|)/|b_random| · 100`.
//!
//! Ensemble members share their circuit *structure* across strategies
//! (seeded by `(master_seed, q, i)` only), so strategy comparisons are
//! paired and the only varying factor is the parameter distribution.
//!
//! # Examples
//!
//! ```
//! use plateau_core::init::InitStrategy;
//! use plateau_core::variance::{variance_scan, VarianceConfig};
//!
//! let cfg = VarianceConfig {
//!     qubit_counts: vec![2, 4],
//!     layers: 10,
//!     n_circuits: 20,
//!     ..VarianceConfig::default()
//! };
//! let scan = variance_scan(&cfg, &[InitStrategy::Random, InitStrategy::XavierNormal])?;
//! assert_eq!(scan.curves.len(), 2);
//! assert_eq!(scan.curves[0].points.len(), 2);
//! assert!(scan.curves[0].points[0].variance > 0.0);
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::ansatz::{training_ansatz, variance_ansatz, Ansatz};
use crate::cost::CostKind;
use crate::error::CoreError;
use crate::init::{FanMode, InitStrategy};
use plateau_grad::{Adjoint, BatchExecutor, GradientEngine, ParameterShift};
use plateau_stats::{decay_improvement_percent, fit_exponential_decay, variance, ExpDecayFit};
use plateau_par::par_map_indexed;
use plateau_rng::{derive_seed, rngs::StdRng, SeedableRng};

/// Which ansatz family the scan ensembles over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnsatzKind {
    /// The paper's Eq. 2: one rotation per qubit per layer, drawn uniformly
    /// from `{RX, RY, RZ}` per ensemble member.
    #[default]
    RandomRotations,
    /// The paper's Eq. 3 training ansatz: RX·RY per qubit per layer
    /// (deterministic structure — ensemble members differ only in their
    /// parameter draw). Used by the fan-mode ablation, where
    /// `params_per_layer = 2·n_qubits` makes the fan conventions diverge.
    Training,
}

/// Gradient engine the scan differentiates with.
///
/// Both engines are exact and agree to ~1e-10 (cross-checked in tests);
/// they differ only in cost profile. [`plateau_grad::Adjoint`] computes
/// the partial in one forward-plus-backward sweep and is the default;
/// [`plateau_grad::ParameterShift`] is the method the paper's PennyLane
/// pipeline exposes (2–4 circuit evaluations per parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradEngineKind {
    /// Adjoint differentiation — the fast default.
    #[default]
    Adjoint,
    /// The textbook parameter-shift rule.
    ParameterShift,
}

/// Configuration of a variance scan.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceConfig {
    /// Qubit counts to sweep (paper: `{2, 4, 6, 8, 10}`).
    pub qubit_counts: Vec<usize>,
    /// Layers per circuit. The paper keeps "substantial depth"; its
    /// motivating figure uses 100 layers, which is this default.
    pub layers: usize,
    /// Ensemble size per `(q, strategy)` cell (paper: 200).
    pub n_circuits: usize,
    /// Cost operator to differentiate.
    pub cost: CostKind,
    /// Fan convention for the initializers.
    pub fan_mode: FanMode,
    /// Ansatz family to ensemble over.
    pub ansatz: AnsatzKind,
    /// Gradient engine that differentiates the last parameter.
    pub engine: GradEngineKind,
    /// Master seed; every circuit and parameter draw derives from it
    /// deterministically, independent of thread scheduling.
    pub seed: u64,
}

impl Default for VarianceConfig {
    fn default() -> Self {
        VarianceConfig {
            qubit_counts: vec![2, 4, 6, 8, 10],
            layers: 100,
            n_circuits: 200,
            cost: CostKind::Global,
            fan_mode: FanMode::Qubits,
            ansatz: AnsatzKind::RandomRotations,
            engine: GradEngineKind::Adjoint,
            seed: 0x706c6174,
        }
    }
}

impl VarianceConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.qubit_counts.is_empty() {
            return Err(CoreError::InvalidConfig("qubit_counts must be non-empty".into()));
        }
        if self.qubit_counts.contains(&0) {
            return Err(CoreError::InvalidConfig("qubit counts must be nonzero".into()));
        }
        if self.layers == 0 {
            return Err(CoreError::InvalidConfig("layers must be nonzero".into()));
        }
        if self.n_circuits < 2 {
            return Err(CoreError::InvalidConfig(
                "variance needs at least two circuits per cell".into(),
            ));
        }
        Ok(())
    }
}

/// One `(qubit count, strategy)` cell of the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct VariancePoint {
    /// Qubit count of this cell.
    pub n_qubits: usize,
    /// `Var(∂C/∂θ_last)` over the ensemble.
    pub variance: f64,
    /// The raw gradient samples (length = `n_circuits`), kept for
    /// bootstrap confidence intervals.
    pub gradients: Vec<f64>,
}

/// The variance-vs-qubits curve of one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyCurve {
    /// The initialization strategy.
    pub strategy: InitStrategy,
    /// One point per qubit count, in the order of
    /// [`VarianceConfig::qubit_counts`].
    pub points: Vec<VariancePoint>,
}

impl StrategyCurve {
    /// Fits `Var(q) = A·e^{b·q}` through this curve.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Fit`] when the fit is ill-posed (e.g. fewer
    /// than two qubit counts or a zero variance).
    pub fn decay_fit(&self) -> Result<ExpDecayFit, CoreError> {
        let qs: Vec<f64> = self.points.iter().map(|p| p.n_qubits as f64).collect();
        let vars: Vec<f64> = self.points.iter().map(|p| p.variance).collect();
        Ok(fit_exponential_decay(&qs, &vars)?)
    }

    /// Percentile-bootstrap confidence interval on the decay rate `b`:
    /// each resample redraws the per-cell gradient ensembles (with
    /// replacement), recomputes the cell variances, and refits the
    /// exponential. This propagates the 200-circuit sampling error into
    /// the *slope* — the quantity behind the paper's headline percentages.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero resample budget or
    /// a confidence level outside `(0, 1)`, and [`CoreError::Fit`] when a
    /// resampled fit is ill-posed.
    pub fn decay_rate_ci<R: plateau_rng::Rng>(
        &self,
        resamples: usize,
        level: f64,
        rng: &mut R,
    ) -> Result<plateau_stats::ConfidenceInterval, CoreError> {
        if resamples == 0 {
            return Err(CoreError::InvalidConfig("resamples must be nonzero".into()));
        }
        if !(level > 0.0 && level < 1.0) {
            return Err(CoreError::InvalidConfig("confidence level must be in (0, 1)".into()));
        }
        let estimate = self.decay_fit()?.rate;
        let qs: Vec<f64> = self.points.iter().map(|p| p.n_qubits as f64).collect();
        let mut rates = Vec::with_capacity(resamples);
        for _ in 0..resamples {
            let vars: Vec<f64> = self
                .points
                .iter()
                .map(|p| {
                    let g = &p.gradients;
                    let resampled: Vec<f64> =
                        (0..g.len()).map(|_| g[rng.gen_range(0..g.len())]).collect();
                    variance(&resampled)
                })
                .collect();
            rates.push(fit_exponential_decay(&qs, &vars).map(|f| f.rate)?);
        }
        let alpha = 1.0 - level;
        Ok(plateau_stats::ConfidenceInterval {
            estimate,
            low: plateau_stats::quantile(&rates, alpha / 2.0),
            high: plateau_stats::quantile(&rates, 1.0 - alpha / 2.0),
            level,
        })
    }
}

/// Full result of a variance scan.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceScan {
    /// The configuration that produced this scan.
    pub config: VarianceConfig,
    /// One curve per strategy, in input order.
    pub curves: Vec<StrategyCurve>,
}

/// One row of the improvement table (the paper's headline numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct Improvement {
    /// The strategy being compared against the baseline.
    pub strategy: InitStrategy,
    /// Fitted decay rate `b` of the strategy (negative = decaying).
    pub decay_rate: f64,
    /// R² of the log-linear fit.
    pub r_squared: f64,
    /// `(|b_baseline| − |b|)/|b_baseline| · 100`.
    pub improvement_percent: f64,
}

impl VarianceScan {
    /// The curve of a given strategy, if present.
    pub fn curve_of(&self, strategy: InitStrategy) -> Option<&StrategyCurve> {
        self.curves.iter().find(|c| c.strategy == strategy)
    }

    /// Builds the improvement table relative to `baseline` (the paper uses
    /// [`InitStrategy::Random`]). The baseline itself is excluded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `baseline` is not in the
    /// scan, or [`CoreError::Fit`] when a decay fit is ill-posed.
    pub fn improvements_vs(&self, baseline: InitStrategy) -> Result<Vec<Improvement>, CoreError> {
        let base_curve = self.curve_of(baseline).ok_or_else(|| {
            CoreError::InvalidConfig(format!("baseline {baseline} not in scan"))
        })?;
        let b_ref = base_curve.decay_fit()?.rate;
        let mut out = Vec::new();
        for curve in &self.curves {
            if curve.strategy == baseline {
                continue;
            }
            let fit = curve.decay_fit()?;
            out.push(Improvement {
                strategy: curve.strategy,
                decay_rate: fit.rate,
                r_squared: fit.r_squared,
                improvement_percent: decay_improvement_percent(b_ref, fit.rate),
            });
        }
        Ok(out)
    }
}

/// Computes one gradient sample: build circuit `(q, i)`, draw parameters
/// with `strategy`, differentiate the last parameter.
fn gradient_sample(
    config: &VarianceConfig,
    strategy: InitStrategy,
    strategy_idx: usize,
    q: usize,
    i: usize,
) -> Result<f64, CoreError> {
    // Circuit structure depends only on (master, q, i): all strategies see
    // the same random gate pattern for ensemble member i.
    let ansatz: Ansatz = match config.ansatz {
        AnsatzKind::RandomRotations => {
            let mut circ_rng =
                StdRng::seed_from_u64(derive_seed(config.seed, 1, q as u64, i as u64));
            variance_ansatz(q, config.layers, &mut circ_rng)?
        }
        AnsatzKind::Training => training_ansatz(q, config.layers)?,
    };

    let mut param_rng = StdRng::seed_from_u64(derive_seed(
        config.seed,
        2 + strategy_idx as u64,
        q as u64,
        i as u64,
    ));
    let params = strategy.sample_params(&ansatz.shape, config.fan_mode, &mut param_rng)?;

    let obs = config.cost.observable(q);
    Ok(match config.engine {
        GradEngineKind::Adjoint => Adjoint.partial_last(&ansatz.circuit, &params, &obs)?,
        GradEngineKind::ParameterShift => {
            ParameterShift.partial_last(&ansatz.circuit, &params, &obs)?
        }
    })
}

/// Computes one cell's gradient ensemble for the [`AnsatzKind::Training`]
/// ansatz, whose circuit structure is *shared* by every ensemble member:
/// members differ only in their parameter draw. That makes the cell a
/// one-structure/many-parameter-vectors sweep — exactly the
/// [`BatchExecutor`] shape — so the ansatz is built and compiled once and
/// the whole ensemble runs through the per-worker scratch pool instead of
/// re-deriving circuit, compile, and statevector per member.
///
/// Member `i`'s parameters come from the same
/// `derive_seed(seed, 2 + strategy_idx, q, i)` stream as
/// [`gradient_sample`], and each per-member partial is computed by the
/// same engine arithmetic, so results are bit-identical to the
/// member-at-a-time path (pinned in tests).
fn training_cell_gradients(
    config: &VarianceConfig,
    strategy: InitStrategy,
    strategy_idx: usize,
    q: usize,
) -> Result<Vec<f64>, CoreError> {
    let ansatz = training_ansatz(q, config.layers)?;
    let param_sets: Vec<Vec<f64>> = (0..config.n_circuits)
        .map(|i| {
            let mut param_rng = StdRng::seed_from_u64(derive_seed(
                config.seed,
                2 + strategy_idx as u64,
                q as u64,
                i as u64,
            ));
            strategy.sample_params(&ansatz.shape, config.fan_mode, &mut param_rng)
        })
        .collect::<Result<_, _>>()?;
    let obs = config.cost.observable(q);
    let mut ex = BatchExecutor::new(&ansatz.circuit);
    Ok(match config.engine {
        GradEngineKind::Adjoint => ex.partial_last_many_adjoint(&param_sets, &obs)?,
        GradEngineKind::ParameterShift => ex.partial_last_many_shift(&param_sets, &obs)?,
    })
}

/// Runs the full variance scan for the given strategies.
///
/// Work is parallelized over ensemble members with
/// [`plateau_par::par_map_indexed`]; determinism is guaranteed by
/// per-task seed derivation ([`plateau_rng::derive_seed`]).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for a degenerate configuration and
/// propagates simulation errors.
pub fn variance_scan(
    config: &VarianceConfig,
    strategies: &[InitStrategy],
) -> Result<VarianceScan, CoreError> {
    config.validate()?;
    if strategies.is_empty() {
        return Err(CoreError::InvalidConfig("at least one strategy required".into()));
    }

    let _scan_span = plateau_obs::span!(
        "variance_scan",
        strategies = strategies.len(),
        qubit_counts = config.qubit_counts.len(),
        circuits = config.n_circuits,
        layers = config.layers
    );

    let mut curves = Vec::with_capacity(strategies.len());
    for (s_idx, &strategy) in strategies.iter().enumerate() {
        let mut points = Vec::with_capacity(config.qubit_counts.len());
        for &q in &config.qubit_counts {
            let _cell_span =
                plateau_obs::span!("variance_cell", strategy = strategy.to_string(), q = q);
            plateau_obs::counter!("core.variance.cells").inc();
            // RandomRotations rebuilds a distinct circuit per member, so
            // members fan out whole; the Training ansatz shares one
            // structure across the ensemble and sweeps it batched.
            let gradients: Vec<f64> = match config.ansatz {
                AnsatzKind::RandomRotations => {
                    par_map_indexed(config.n_circuits, |i| {
                        gradient_sample(config, strategy, s_idx, q, i)
                    })
                    .into_iter()
                    .collect::<Result<_, CoreError>>()?
                }
                AnsatzKind::Training => training_cell_gradients(config, strategy, s_idx, q)?,
            };
            let var = variance(&gradients);
            plateau_obs::info!("variance cell {strategy} q={q}: var={var:.3e}");
            points.push(VariancePoint {
                n_qubits: q,
                variance: var,
                gradients,
            });
        }
        curves.push(StrategyCurve { strategy, points });
    }

    let scan = VarianceScan {
        config: config.clone(),
        curves,
    };
    record_scan_ledger(&scan);
    Ok(scan)
}

/// Appends the scan to the experiment ledger (when enabled): a
/// `"variance"` run record with the fitted decay rates as metrics, plus a
/// time series with `x` = qubit count and one column per strategy — the
/// exact data behind Fig 5a, replayable via `plateau obs runs`.
///
/// Telemetry must never fail the science: IO errors only warn.
fn record_scan_ledger(scan: &VarianceScan) {
    if !plateau_obs::ledger_enabled() {
        return;
    }
    use plateau_obs::json::Json;
    let cfg = &scan.config;
    let columns: Vec<String> =
        scan.curves.iter().map(|c| c.strategy.name().to_string()).collect();
    let mut series = plateau_obs::TimeSeries::new(columns, cfg.qubit_counts.len());
    let mut row = Vec::with_capacity(scan.curves.len());
    for (qi, &q) in cfg.qubit_counts.iter().enumerate() {
        row.clear();
        for curve in &scan.curves {
            row.push(curve.points[qi].variance);
        }
        series.push(q as f64, &row);
    }
    let mut run = plateau_obs::RunRecord::new("variance")
        .config(
            "qubits",
            Json::Arr(cfg.qubit_counts.iter().map(|&q| Json::from(q)).collect()),
        )
        .config("layers", Json::from(cfg.layers))
        .config("circuits", Json::from(cfg.n_circuits))
        .config("cost", Json::str(cfg.cost.to_string()))
        .config("ansatz", Json::str(format!("{:?}", cfg.ansatz)))
        .config("engine", Json::str(format!("{:?}", cfg.engine)))
        .config(
            "strategies",
            Json::Arr(
                scan.curves
                    .iter()
                    .map(|c| Json::str(c.strategy.name()))
                    .collect(),
            ),
        )
        .seed(cfg.seed);
    for curve in &scan.curves {
        if let Ok(fit) = curve.decay_fit() {
            run = run
                .metric(&format!("decay_rate_{}", curve.strategy.name()), fit.rate)
                .metric(&format!("r_squared_{}", curve.strategy.name()), fit.r_squared);
        }
    }
    if let Err(e) = plateau_obs::record_run(&run, Some(&series)) {
        plateau_obs::warn!("variance: ledger write failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> VarianceConfig {
        VarianceConfig {
            qubit_counts: vec![2, 4, 6],
            layers: 12,
            n_circuits: 40,
            ..VarianceConfig::default()
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let c = VarianceConfig::default();
        assert_eq!(c.qubit_counts, vec![2, 4, 6, 8, 10]);
        assert_eq!(c.n_circuits, 200);
        assert_eq!(c.cost, CostKind::Global);
        assert_eq!(c.engine, GradEngineKind::Adjoint);
    }

    #[test]
    fn engines_agree_on_seeded_scan_cell() {
        // Same seeded 4-qubit cell, differentiated by both engines: the
        // adjoint sweep and the parameter-shift rule are independent exact
        // methods, so every gradient sample must agree to ~1e-10.
        let adjoint_cfg = VarianceConfig {
            qubit_counts: vec![4],
            layers: 8,
            n_circuits: 12,
            engine: GradEngineKind::Adjoint,
            ..VarianceConfig::default()
        };
        let shift_cfg = VarianceConfig {
            engine: GradEngineKind::ParameterShift,
            ..adjoint_cfg.clone()
        };
        let a = variance_scan(&adjoint_cfg, &[InitStrategy::Random]).unwrap();
        let b = variance_scan(&shift_cfg, &[InitStrategy::Random]).unwrap();
        let ga = &a.curves[0].points[0].gradients;
        let gb = &b.curves[0].points[0].gradients;
        assert_eq!(ga.len(), gb.len());
        for (x, y) in ga.iter().zip(gb) {
            assert!((x - y).abs() < 1e-10, "adjoint {x} vs parameter-shift {y}");
        }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = small_config();
        c.qubit_counts.clear();
        assert!(variance_scan(&c, &[InitStrategy::Random]).is_err());

        let mut c = small_config();
        c.n_circuits = 1;
        assert!(variance_scan(&c, &[InitStrategy::Random]).is_err());

        let mut c = small_config();
        c.layers = 0;
        assert!(variance_scan(&c, &[InitStrategy::Random]).is_err());

        let mut c = small_config();
        c.qubit_counts = vec![0];
        assert!(variance_scan(&c, &[InitStrategy::Random]).is_err());

        assert!(variance_scan(&small_config(), &[]).is_err());
    }

    #[test]
    fn scan_shape_and_determinism() {
        let cfg = small_config();
        let strategies = [InitStrategy::Random, InitStrategy::XavierNormal];
        let a = variance_scan(&cfg, &strategies).unwrap();
        assert_eq!(a.curves.len(), 2);
        for curve in &a.curves {
            assert_eq!(curve.points.len(), 3);
            for p in &curve.points {
                assert_eq!(p.gradients.len(), 40);
                assert!(p.variance.is_finite());
            }
        }
        // Re-running with the same seed reproduces everything exactly.
        let b = variance_scan(&cfg, &strategies).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_variance_decays_with_qubits() {
        let cfg = VarianceConfig {
            qubit_counts: vec![2, 6],
            layers: 30,
            n_circuits: 60,
            ..VarianceConfig::default()
        };
        let scan = variance_scan(&cfg, &[InitStrategy::Random]).unwrap();
        let pts = &scan.curves[0].points;
        assert!(
            pts[0].variance > pts[1].variance,
            "variance should decay: {} vs {}",
            pts[0].variance,
            pts[1].variance
        );
    }

    #[test]
    fn bounded_init_decays_slower_than_random() {
        let cfg = VarianceConfig {
            qubit_counts: vec![2, 4, 6],
            layers: 20,
            n_circuits: 60,
            ..VarianceConfig::default()
        };
        let scan =
            variance_scan(&cfg, &[InitStrategy::Random, InitStrategy::XavierNormal]).unwrap();
        let rand_fit = scan.curve_of(InitStrategy::Random).unwrap().decay_fit().unwrap();
        let xav_fit = scan
            .curve_of(InitStrategy::XavierNormal)
            .unwrap()
            .decay_fit()
            .unwrap();
        assert!(rand_fit.rate < 0.0, "random rate {}", rand_fit.rate);
        assert!(
            xav_fit.rate.abs() < rand_fit.rate.abs(),
            "xavier {} should decay slower than random {}",
            xav_fit.rate,
            rand_fit.rate
        );
    }

    #[test]
    fn improvements_table() {
        let cfg = small_config();
        let scan =
            variance_scan(&cfg, &[InitStrategy::Random, InitStrategy::He]).unwrap();
        let imps = scan.improvements_vs(InitStrategy::Random).unwrap();
        assert_eq!(imps.len(), 1);
        assert_eq!(imps[0].strategy, InitStrategy::He);
        assert!(imps[0].improvement_percent.is_finite());
        // Missing baseline errors out.
        assert!(scan.improvements_vs(InitStrategy::LeCun).is_err());
    }

    #[test]
    fn curve_of_lookup() {
        let cfg = small_config();
        let scan = variance_scan(&cfg, &[InitStrategy::Random]).unwrap();
        assert!(scan.curve_of(InitStrategy::Random).is_some());
        assert!(scan.curve_of(InitStrategy::He).is_none());
    }

    #[test]
    fn seed_changes_results() {
        let cfg = small_config();
        let mut cfg2 = small_config();
        cfg2.seed = cfg.seed + 1;
        let a = variance_scan(&cfg, &[InitStrategy::Random]).unwrap();
        let b = variance_scan(&cfg2, &[InitStrategy::Random]).unwrap();
        assert_ne!(a.curves[0].points[0].gradients, b.curves[0].points[0].gradients);
    }

    #[test]
    fn decay_rate_ci_brackets_the_point_estimate() {
        use plateau_rng::rngs::StdRng;
        use plateau_rng::SeedableRng;
        let cfg = small_config();
        let scan = variance_scan(&cfg, &[InitStrategy::Random]).unwrap();
        let curve = &scan.curves[0];
        let mut rng = StdRng::seed_from_u64(77);
        let ci = curve.decay_rate_ci(200, 0.95, &mut rng).unwrap();
        assert!(ci.low <= ci.estimate && ci.estimate <= ci.high);
        assert!(ci.high - ci.low > 0.0);
        assert!(ci.high - ci.low < 2.0, "CI implausibly wide: {ci:?}");
        // Deterministic under the same seed.
        let mut rng2 = StdRng::seed_from_u64(77);
        assert_eq!(ci, curve.decay_rate_ci(200, 0.95, &mut rng2).unwrap());
        // Validation paths.
        assert!(curve.decay_rate_ci(0, 0.95, &mut rng).is_err());
        assert!(curve.decay_rate_ci(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn training_ansatz_kind_runs_and_differs_from_random_rotations() {
        let base = VarianceConfig {
            qubit_counts: vec![2, 3],
            layers: 6,
            n_circuits: 12,
            ..VarianceConfig::default()
        };
        let train_cfg = VarianceConfig {
            ansatz: AnsatzKind::Training,
            ..base.clone()
        };
        let a = variance_scan(&base, &[InitStrategy::Random]).unwrap();
        let b = variance_scan(&train_cfg, &[InitStrategy::Random]).unwrap();
        // The training ansatz has 2 params per qubit per layer, so the
        // parameter draws (and hence gradients) differ.
        assert_ne!(
            a.curves[0].points[0].gradients,
            b.curves[0].points[0].gradients
        );
        // And it is deterministic: no per-member structural randomness.
        let b2 = variance_scan(&train_cfg, &[InitStrategy::Random]).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn scan_appends_ledger_record_with_per_strategy_columns() {
        let _guard = plateau_obs::test_lock();
        let dir = std::env::temp_dir()
            .join(format!("plateau_variance_ledger_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        plateau_obs::set_ledger_dir(Some(&dir));

        let cfg = VarianceConfig {
            qubit_counts: vec![2, 3],
            layers: 6,
            n_circuits: 10,
            ..VarianceConfig::default()
        };
        variance_scan(&cfg, &[InitStrategy::Random, InitStrategy::XavierUniform]).unwrap();

        let text = std::fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
        let rec = plateau_obs::json::Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(rec.get("command").unwrap().as_str(), Some("variance"));
        assert!(rec.get("metrics").unwrap().get("decay_rate_random").is_some());
        let rel = rec.get("series").unwrap().as_str().unwrap().to_string();
        let series = plateau_obs::TimeSeries::read_jsonl(&dir.join(rel)).unwrap();
        assert_eq!(series.columns(), ["random", "xavier_uniform"]);
        // x is the qubit count, one row per swept width.
        let col = series.column("random").unwrap();
        assert_eq!(col.len(), 2);
        assert_eq!(col[0].0, 2.0);
        assert_eq!(col[1].0, 3.0);

        plateau_obs::set_ledger_dir(None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn splitmix_derivation_spreads_bits() {
        // Adjacent task indices give unrelated seeds.
        let s1 = derive_seed(7, 1, 2, 3);
        let s2 = derive_seed(7, 1, 2, 4);
        assert_ne!(s1, s2);
        assert!((s1 ^ s2).count_ones() > 8);
    }

    #[test]
    fn scan_is_identical_when_forced_sequential() {
        // Thread count must never leak into results: per-task seed
        // derivation makes the parallel and sequential scans bit-equal.
        let cfg = VarianceConfig {
            qubit_counts: vec![2, 3],
            layers: 6,
            n_circuits: 10,
            ..VarianceConfig::default()
        };
        let parallel = variance_scan(&cfg, &[InitStrategy::Random]).unwrap();
        std::env::set_var("PLATEAU_THREADS", "1");
        let sequential = variance_scan(&cfg, &[InitStrategy::Random]).unwrap();
        std::env::remove_var("PLATEAU_THREADS");
        assert_eq!(parallel, sequential);
    }
}
