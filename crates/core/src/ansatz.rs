//! Hardware-efficient ansatz builders (the paper's §IV).
//!
//! Two constructions:
//!
//! - [`variance_ansatz`] (Eq. 2): per layer, every qubit gets **one**
//!   rotation gate drawn uniformly from `{RX, RY, RZ}`, followed by a
//!   nearest-neighbour CZ chain. Used for the gradient-variance analysis;
//!   each of the 200 ensemble members has an independently drawn gate
//!   pattern.
//! - [`training_ansatz`] (Eq. 3): per layer, every qubit gets RX then RY,
//!   followed by the CZ chain. For the paper's 10-qubit, 5-layer setting
//!   this is exactly 145 gates and 100 parameters.
//!
//! Both report their [`LayerShape`] so the initializers can compute fans.
//!
//! # Examples
//!
//! ```
//! use plateau_core::ansatz::training_ansatz;
//!
//! let a = training_ansatz(10, 5)?;
//! assert_eq!(a.circuit.gate_count(), 145); // paper §IV-D
//! assert_eq!(a.circuit.n_params(), 100);
//! assert_eq!(a.shape.params_per_layer(), 20);
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use crate::init::LayerShape;
use plateau_sim::{Circuit, RotationGate};
use plateau_rng::Rng;

/// An ansatz: a circuit plus the layer geometry its initializers need.
#[derive(Debug, Clone, PartialEq)]
pub struct Ansatz {
    /// The parameterized circuit.
    pub circuit: Circuit,
    /// Layer geometry (qubits, params per layer, layer count).
    pub shape: LayerShape,
}

/// Builds the paper's training ansatz (Eq. 3): `layers` repetitions of
/// `RY(θ)·RX(θ)` on every qubit followed by a CZ chain
/// `Π CZ_{k,k+1}`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero qubits/layers and
/// simulator errors for out-of-range registers.
pub fn training_ansatz(n_qubits: usize, layers: usize) -> Result<Ansatz, CoreError> {
    if n_qubits == 0 || layers == 0 {
        return Err(CoreError::InvalidConfig(
            "training ansatz needs at least one qubit and one layer".into(),
        ));
    }
    let mut circuit = Circuit::new(n_qubits)?;
    for _ in 0..layers {
        for q in 0..n_qubits {
            circuit.rx(q)?;
            circuit.ry(q)?;
        }
        for q in 0..n_qubits.saturating_sub(1) {
            circuit.cz(q, q + 1)?;
        }
    }
    let shape = LayerShape::new(n_qubits, 2 * n_qubits, layers)?;
    Ok(Ansatz { circuit, shape })
}

/// Builds one random member of the paper's variance-analysis ensemble
/// (Eq. 2): `layers` repetitions of one rotation gate per qubit — drawn
/// uniformly from `{RX, RY, RZ}` using `rng` — followed by the CZ chain.
///
/// The gate *pattern* is what varies between the 200 ensemble members; the
/// parameter *values* are drawn separately by the chosen
/// [`crate::init::InitStrategy`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero qubits/layers and
/// simulator errors for out-of-range registers.
pub fn variance_ansatz<R: Rng + ?Sized>(
    n_qubits: usize,
    layers: usize,
    rng: &mut R,
) -> Result<Ansatz, CoreError> {
    if n_qubits == 0 || layers == 0 {
        return Err(CoreError::InvalidConfig(
            "variance ansatz needs at least one qubit and one layer".into(),
        ));
    }
    let mut circuit = Circuit::new(n_qubits)?;
    for _ in 0..layers {
        for q in 0..n_qubits {
            let gate = RotationGate::PAULI_ROTATIONS[rng.gen_range(0..3usize)];
            circuit.push_rotation(gate, q)?;
        }
        for q in 0..n_qubits.saturating_sub(1) {
            circuit.cz(q, q + 1)?;
        }
    }
    let shape = LayerShape::new(n_qubits, n_qubits, layers)?;
    Ok(Ansatz { circuit, shape })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_sim::Op;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    #[test]
    fn training_ansatz_paper_counts() {
        // §IV-D: width 10, depth 5 → 145 gates, 100 parameters.
        let a = training_ansatz(10, 5).unwrap();
        assert_eq!(a.circuit.gate_count(), 145);
        assert_eq!(a.circuit.n_params(), 100);
        assert_eq!(a.shape.n_params(), 100);
        assert_eq!(a.shape.layers(), 5);
    }

    #[test]
    fn training_ansatz_structure() {
        let a = training_ansatz(3, 2).unwrap();
        // Layer: RX,RY ×3 qubits (6 rotations) + 2 CZ = 8 ops; ×2 layers.
        assert_eq!(a.circuit.gate_count(), 16);
        assert_eq!(a.circuit.n_params(), 12);
        // First two ops are RX then RY on qubit 0.
        match &a.circuit.ops()[0] {
            Op::Rotation { gate, qubit, .. } => {
                assert_eq!(*gate, RotationGate::Rx);
                assert_eq!(*qubit, 0);
            }
            other => panic!("unexpected op {other:?}"),
        }
        match &a.circuit.ops()[1] {
            Op::Rotation { gate, .. } => assert_eq!(*gate, RotationGate::Ry),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn training_ansatz_single_qubit_has_no_entangler() {
        let a = training_ansatz(1, 3).unwrap();
        assert_eq!(a.circuit.gate_count(), 6);
        assert!(a
            .circuit
            .ops()
            .iter()
            .all(|op| matches!(op, Op::Rotation { .. })));
    }

    #[test]
    fn variance_ansatz_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = variance_ansatz(4, 10, &mut rng).unwrap();
        // Per layer: 4 rotations + 3 CZ = 7; ×10 layers.
        assert_eq!(a.circuit.gate_count(), 70);
        assert_eq!(a.circuit.n_params(), 40);
        assert_eq!(a.shape.params_per_layer(), 4);
    }

    #[test]
    fn variance_ansatz_draws_all_three_gates() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = variance_ansatz(10, 30, &mut rng).unwrap();
        let mut seen = [false; 3];
        for op in a.circuit.ops() {
            if let Op::Rotation { gate, .. } = op {
                match gate {
                    RotationGate::Rx => seen[0] = true,
                    RotationGate::Ry => seen[1] = true,
                    RotationGate::Rz => seen[2] = true,
                    RotationGate::Phase => panic!("Phase not in the draw set"),
                }
            }
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn variance_ansatz_is_seed_reproducible() {
        let a = variance_ansatz(5, 8, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = variance_ansatz(5, 8, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.circuit, b.circuit);
        let c = variance_ansatz(5, 8, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_ne!(a.circuit, c.circuit);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(training_ansatz(0, 1).is_err());
        assert!(training_ansatz(1, 0).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(variance_ansatz(0, 1, &mut rng).is_err());
        assert!(variance_ansatz(1, 0, &mut rng).is_err());
    }

    #[test]
    fn ansatz_runs_at_zero_params() {
        let a = training_ansatz(4, 3).unwrap();
        let s = a.circuit.run(&vec![0.0; a.circuit.n_params()]).unwrap();
        assert!((s.probability_all_zeros() - 1.0).abs() < 1e-12);
    }
}
