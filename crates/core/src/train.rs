//! Training loop for the identity-learning task (the paper's §IV-D / §V).
//!
//! Given an ansatz, a cost observable, an initial parameter vector, and an
//! optimizer, [`train`] runs a fixed number of iterations (the paper uses
//! 50) recording the loss trajectory — the data series behind Fig 5b/5c.
//!
//! The loop carries a [`BarrenPlateauAlarm`]: when the gradient norm stays
//! below a threshold for a configurable number of consecutive iterations,
//! a structured `barren_plateau_alarm` warning event is emitted through
//! `plateau-obs` and the occurrence is recorded in
//! [`TrainingHistory::plateau_alarms`].
//!
//! # Examples
//!
//! ```
//! use plateau_core::{ansatz::training_ansatz, cost::CostKind, optim::Adam, train::train};
//! use plateau_core::init::{FanMode, InitStrategy};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let a = training_ansatz(4, 2)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let theta0 = InitStrategy::XavierNormal.sample_params(&a.shape, FanMode::Qubits, &mut rng)?;
//! let mut adam = Adam::new(0.1)?;
//! let hist = train(&a.circuit, &CostKind::Global.observable(4), theta0, &mut adam, 30)?;
//! assert_eq!(hist.losses().len(), 31); // initial loss + one per iteration
//! assert!(hist.final_loss() < hist.initial_loss());
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use crate::optim::Optimizer;
use plateau_grad::{expectation, Adjoint, GradientEngine};
use plateau_sim::{Circuit, Observable};

/// One firing of the [`BarrenPlateauAlarm`]: the iteration at which a
/// sub-threshold gradient-norm streak reached the alarm window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateauAlarmEvent {
    /// Zero-based iteration index at which the streak completed.
    pub iteration: usize,
    /// The gradient norm observed at that iteration.
    pub grad_norm: f64,
}

/// Health check for training runs: fires when the gradient norm stays
/// below `threshold` for `window` consecutive iterations — the operational
/// signature of a barren plateau. Each streak fires at most once; the
/// streak resets as soon as the norm recovers.
///
/// A `window` of 0 disables the alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrenPlateauAlarm {
    /// Gradient-norm threshold below which an iteration counts toward the
    /// streak.
    pub threshold: f64,
    /// Number of consecutive sub-threshold iterations required to fire.
    pub window: usize,
}

impl Default for BarrenPlateauAlarm {
    fn default() -> Self {
        BarrenPlateauAlarm {
            threshold: 1e-4,
            window: 8,
        }
    }
}

impl BarrenPlateauAlarm {
    /// Feeds one iteration's gradient norm into the streak counter held in
    /// `streak`. Returns an event exactly when the streak *reaches* the
    /// window — later iterations of the same streak stay silent.
    pub fn observe(
        &self,
        streak: &mut usize,
        iteration: usize,
        grad_norm: f64,
    ) -> Option<PlateauAlarmEvent> {
        if self.window == 0 {
            return None;
        }
        if grad_norm < self.threshold {
            *streak += 1;
            if *streak == self.window {
                return Some(PlateauAlarmEvent { iteration, grad_norm });
            }
        } else {
            *streak = 0;
        }
        None
    }
}

/// The recorded trajectory of one training run.
///
/// Guaranteed non-empty: every constructor validates that there is at
/// least one loss entry and that `grad_norms` holds exactly one entry per
/// iteration (`losses.len() - 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingHistory {
    pub(crate) losses: Vec<f64>,
    pub(crate) grad_norms: Vec<f64>,
    pub(crate) final_params: Vec<f64>,
    pub(crate) plateau_alarms: Vec<PlateauAlarmEvent>,
}

impl TrainingHistory {
    /// Builds a history, enforcing the structural invariants that the
    /// accessors rely on.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `losses` is empty or when
    /// `grad_norms.len() + 1 != losses.len()`.
    pub fn new(
        losses: Vec<f64>,
        grad_norms: Vec<f64>,
        final_params: Vec<f64>,
    ) -> Result<TrainingHistory, CoreError> {
        if losses.is_empty() {
            return Err(CoreError::InvalidConfig(
                "training history needs at least one loss entry".into(),
            ));
        }
        if grad_norms.len() + 1 != losses.len() {
            return Err(CoreError::InvalidConfig(format!(
                "training history needs one gradient norm per iteration: \
                 {} losses imply {} norms, got {}",
                losses.len(),
                losses.len() - 1,
                grad_norms.len()
            )));
        }
        Ok(TrainingHistory {
            losses,
            grad_norms,
            final_params,
            plateau_alarms: Vec::new(),
        })
    }

    /// Loss before training plus after each iteration
    /// (`iterations + 1` entries).
    pub fn losses(&self) -> &[f64] {
        &self.losses
    }

    /// L2 norm of the gradient at each iteration (`iterations` entries).
    pub fn grad_norms(&self) -> &[f64] {
        &self.grad_norms
    }

    /// Parameters after the final iteration.
    pub fn final_params(&self) -> &[f64] {
        &self.final_params
    }

    /// Barren-plateau alarms raised during the run, in firing order.
    pub fn plateau_alarms(&self) -> &[PlateauAlarmEvent] {
        &self.plateau_alarms
    }

    /// Loss at initialization.
    pub fn initial_loss(&self) -> f64 {
        self.losses[0]
    }

    /// Loss after the final iteration. Total by construction: the
    /// validating constructors reject empty histories.
    pub fn final_loss(&self) -> f64 {
        self.losses[self.losses.len() - 1]
    }

    /// First iteration (1-based) at which the loss drops below `threshold`,
    /// or `None` if it never does. Iteration 0 means "already below at
    /// initialization".
    pub fn iterations_to_reach(&self, threshold: f64) -> Option<usize> {
        self.losses.iter().position(|&l| l < threshold)
    }

    /// Total loss reduction, `initial − final`.
    pub fn improvement(&self) -> f64 {
        self.initial_loss() - self.final_loss()
    }
}

/// Trains `circuit` against `observable` for `iterations` steps using the
/// exact adjoint gradient, mutating a copy of `initial_params` with
/// `optimizer`.
///
/// # Errors
///
/// Propagates configuration errors (parameter-count mismatches, optimizer
/// length mismatches) as [`CoreError`].
pub fn train(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
) -> Result<TrainingHistory, CoreError> {
    train_with_engine(circuit, observable, initial_params, optimizer, iterations, &Adjoint)
}

/// [`train`] with an explicit gradient engine (used by tests to show that
/// the training trajectory is engine-independent, and by the shot-noise
/// ablation). Runs the default [`BarrenPlateauAlarm`].
///
/// # Errors
///
/// Propagates configuration errors as [`CoreError`].
pub fn train_with_engine(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
    engine: &dyn GradientEngine,
) -> Result<TrainingHistory, CoreError> {
    train_with_alarm(
        circuit,
        observable,
        initial_params,
        optimizer,
        iterations,
        engine,
        &BarrenPlateauAlarm::default(),
    )
}

/// [`train_with_engine`] with an explicit [`BarrenPlateauAlarm`]
/// configuration.
///
/// # Errors
///
/// Propagates configuration errors as [`CoreError`].
pub fn train_with_alarm(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
    engine: &dyn GradientEngine,
    alarm: &BarrenPlateauAlarm,
) -> Result<TrainingHistory, CoreError> {
    let mut params = initial_params;
    circuit.check_params(&params)?;

    let _span = plateau_obs::span!("train", iterations = iterations, params = params.len());

    let mut losses = Vec::with_capacity(iterations + 1);
    let mut grad_norms = Vec::with_capacity(iterations);
    let mut alarms = Vec::new();
    let mut streak = 0usize;
    losses.push(expectation(circuit, &params, observable)?);

    for it in 0..iterations {
        let grad = engine.gradient(circuit, &params, observable)?;
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        plateau_obs::gauge!("train.grad_norm").set(norm);
        grad_norms.push(norm);
        if let Some(event) = alarm.observe(&mut streak, it, norm) {
            plateau_obs::event!(
                plateau_obs::Level::Warn,
                "barren_plateau_alarm",
                iteration = event.iteration,
                grad_norm = event.grad_norm,
                threshold = alarm.threshold,
                window = alarm.window
            );
            alarms.push(event);
        }
        optimizer.step(&mut params, &grad)?;
        plateau_obs::counter!("train.optimizer_steps").inc();
        losses.push(expectation(circuit, &params, observable)?);
    }

    let mut hist = TrainingHistory::new(losses, grad_norms, params)?;
    hist.plateau_alarms = alarms;
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::training_ansatz;
    use crate::cost::CostKind;
    use crate::init::{FanMode, InitStrategy};
    use crate::optim::{Adam, GradientDescent};
    use plateau_grad::ParameterShift;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    fn setup(n: usize, layers: usize, strategy: InitStrategy, seed: u64) -> (Circuit, Vec<f64>) {
        let a = training_ansatz(n, layers).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let theta = strategy
            .sample_params(&a.shape, FanMode::Qubits, &mut rng)
            .unwrap();
        (a.circuit, theta)
    }

    #[test]
    fn xavier_init_trains_to_low_cost() {
        let (c, theta) = setup(4, 3, InitStrategy::XavierNormal, 0);
        let obs = CostKind::Global.observable(4);
        let mut adam = Adam::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut adam, 50).unwrap();
        assert!(hist.final_loss() < 0.05, "final {}", hist.final_loss());
        assert_eq!(hist.losses().len(), 51);
        assert_eq!(hist.grad_norms().len(), 50);
        assert_eq!(hist.final_params().len(), c.n_params());
    }

    #[test]
    fn gd_also_decreases_cost() {
        let (c, theta) = setup(4, 2, InitStrategy::XavierUniform, 1);
        let obs = CostKind::Global.observable(4);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 50).unwrap();
        assert!(hist.improvement() > 0.0);
        assert!(hist.final_loss() < hist.initial_loss());
    }

    #[test]
    fn zero_init_stays_at_minimum() {
        let (c, _) = setup(3, 2, InitStrategy::Zero, 2);
        let theta = vec![0.0; c.n_params()];
        let obs = CostKind::Global.observable(3);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 5).unwrap();
        for l in hist.losses() {
            assert!(l.abs() < 1e-12);
        }
        for g in hist.grad_norms() {
            assert!(g.abs() < 1e-12);
        }
    }

    #[test]
    fn engine_choice_does_not_change_trajectory() {
        let (c, theta) = setup(3, 2, InitStrategy::He, 3);
        let obs = CostKind::Global.observable(3);
        let mut gd1 = GradientDescent::new(0.1).unwrap();
        let h1 = train_with_engine(&c, &obs, theta.clone(), &mut gd1, 10, &Adjoint).unwrap();
        let mut gd2 = GradientDescent::new(0.1).unwrap();
        let h2 = train_with_engine(&c, &obs, theta, &mut gd2, 10, &ParameterShift).unwrap();
        for (a, b) in h1.losses().iter().zip(h2.losses().iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn history_helpers() {
        let hist = TrainingHistory::new(
            vec![0.9, 0.5, 0.2, 0.05],
            vec![1.0, 0.8, 0.3],
            vec![0.0],
        )
        .unwrap();
        assert_eq!(hist.initial_loss(), 0.9);
        assert_eq!(hist.final_loss(), 0.05);
        assert_eq!(hist.iterations_to_reach(0.3), Some(2));
        assert_eq!(hist.iterations_to_reach(0.01), None);
        assert!((hist.improvement() - 0.85).abs() < 1e-12);
        assert!(hist.plateau_alarms().is_empty());
    }

    #[test]
    fn iterations_to_reach_edge_cases() {
        // Threshold already met at initialization → iteration 0.
        let below_at_start =
            TrainingHistory::new(vec![0.01, 0.5], vec![1.0], vec![0.0]).unwrap();
        assert_eq!(below_at_start.iterations_to_reach(0.1), Some(0));
        // Threshold never met → None (including exact equality: strictly
        // below is required).
        let never = TrainingHistory::new(vec![0.5, 0.5, 0.5], vec![1.0, 1.0], vec![0.0]).unwrap();
        assert_eq!(never.iterations_to_reach(0.5), None);
        assert_eq!(never.iterations_to_reach(0.1), None);
        // Single-entry history (zero iterations).
        let single = TrainingHistory::new(vec![0.3], vec![], vec![]).unwrap();
        assert_eq!(single.iterations_to_reach(0.4), Some(0));
        assert_eq!(single.iterations_to_reach(0.2), None);
    }

    #[test]
    fn constructor_enforces_invariants() {
        assert!(TrainingHistory::new(vec![], vec![], vec![]).is_err());
        assert!(TrainingHistory::new(vec![0.5], vec![1.0], vec![]).is_err());
        assert!(TrainingHistory::new(vec![0.5, 0.4], vec![1.0, 0.9], vec![]).is_err());
        assert!(TrainingHistory::new(vec![0.5, 0.4], vec![1.0], vec![]).is_ok());
    }

    #[test]
    fn alarm_fires_once_per_streak_and_resets() {
        let alarm = BarrenPlateauAlarm {
            threshold: 0.1,
            window: 3,
        };
        let mut streak = 0;
        // Two sub-threshold, one recovery, then a full streak of four: the
        // alarm fires exactly once, at the third consecutive low norm.
        let norms = [0.01, 0.02, 0.5, 0.01, 0.01, 0.01, 0.01];
        let mut events = Vec::new();
        for (it, &n) in norms.iter().enumerate() {
            if let Some(e) = alarm.observe(&mut streak, it, n) {
                events.push(e);
            }
        }
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].iteration, 5);
        assert_eq!(events[0].grad_norm, 0.01);
        // window = 0 disables the alarm entirely.
        let off = BarrenPlateauAlarm { threshold: 0.1, window: 0 };
        let mut s = 0;
        assert!(off.observe(&mut s, 0, 0.0).is_none());
    }

    #[test]
    fn plateau_alarm_surfaces_in_history() {
        // Zero-init on the identity learner sits exactly on the plateau:
        // every gradient norm is ~0, so the default window-8 alarm fires at
        // iteration 7 and only once.
        let (c, _) = setup(3, 2, InitStrategy::Zero, 7);
        let theta = vec![0.0; c.n_params()];
        let obs = CostKind::Global.observable(3);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 12).unwrap();
        assert_eq!(hist.plateau_alarms().len(), 1);
        assert_eq!(hist.plateau_alarms()[0].iteration, 7);
        assert!(hist.plateau_alarms()[0].grad_norm < 1e-4);
        // A healthy run raises no alarm.
        let (c2, theta2) = setup(4, 3, InitStrategy::XavierNormal, 0);
        let obs2 = CostKind::Global.observable(4);
        let mut adam = Adam::new(0.1).unwrap();
        let healthy = train(&c2, &obs2, theta2, &mut adam, 20).unwrap();
        assert!(healthy.plateau_alarms().is_empty());
    }

    #[test]
    fn zero_iterations_records_only_initial_loss() {
        let (c, theta) = setup(2, 1, InitStrategy::Random, 4);
        let obs = CostKind::Global.observable(2);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 0).unwrap();
        assert_eq!(hist.losses().len(), 1);
        assert!(hist.grad_norms().is_empty());
    }

    #[test]
    fn wrong_param_length_is_error() {
        let (c, _) = setup(2, 1, InitStrategy::Random, 5);
        let obs = CostKind::Global.observable(2);
        let mut gd = GradientDescent::new(0.1).unwrap();
        assert!(train(&c, &obs, vec![0.0; 1], &mut gd, 1).is_err());
    }

    #[test]
    fn local_cost_trains_too() {
        let (c, theta) = setup(4, 2, InitStrategy::LeCun, 6);
        let obs = CostKind::Local.observable(4);
        let mut adam = Adam::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut adam, 40).unwrap();
        assert!(hist.final_loss() < hist.initial_loss());
    }
}
