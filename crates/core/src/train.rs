//! Training loop for the identity-learning task (the paper's §IV-D / §V).
//!
//! Given an ansatz, a cost observable, an initial parameter vector, and an
//! optimizer, [`train`] runs a fixed number of iterations (the paper uses
//! 50) recording the loss trajectory — the data series behind Fig 5b/5c.
//!
//! # Examples
//!
//! ```
//! use plateau_core::{ansatz::training_ansatz, cost::CostKind, optim::Adam, train::train};
//! use plateau_core::init::{FanMode, InitStrategy};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let a = training_ansatz(4, 2)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let theta0 = InitStrategy::XavierNormal.sample_params(&a.shape, FanMode::Qubits, &mut rng)?;
//! let mut adam = Adam::new(0.1)?;
//! let hist = train(&a.circuit, &CostKind::Global.observable(4), theta0, &mut adam, 30)?;
//! assert_eq!(hist.losses.len(), 31); // initial loss + one per iteration
//! assert!(hist.final_loss() < hist.initial_loss());
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use crate::optim::Optimizer;
use plateau_grad::{expectation, Adjoint, GradientEngine};
use plateau_sim::{Circuit, Observable};

/// The recorded trajectory of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingHistory {
    /// Loss before training plus after each iteration
    /// (`iterations + 1` entries).
    pub losses: Vec<f64>,
    /// L2 norm of the gradient at each iteration (`iterations` entries).
    pub grad_norms: Vec<f64>,
    /// Parameters after the final iteration.
    pub final_params: Vec<f64>,
}

impl TrainingHistory {
    /// Loss at initialization.
    pub fn initial_loss(&self) -> f64 {
        self.losses[0]
    }

    /// Loss after the final iteration.
    pub fn final_loss(&self) -> f64 {
        *self.losses.last().expect("history is never empty")
    }

    /// First iteration (1-based) at which the loss drops below `threshold`,
    /// or `None` if it never does. Iteration 0 means "already below at
    /// initialization".
    pub fn iterations_to_reach(&self, threshold: f64) -> Option<usize> {
        self.losses.iter().position(|&l| l < threshold)
    }

    /// Total loss reduction, `initial − final`.
    pub fn improvement(&self) -> f64 {
        self.initial_loss() - self.final_loss()
    }
}

/// Trains `circuit` against `observable` for `iterations` steps using the
/// exact adjoint gradient, mutating a copy of `initial_params` with
/// `optimizer`.
///
/// # Errors
///
/// Propagates configuration errors (parameter-count mismatches, optimizer
/// length mismatches) as [`CoreError`].
pub fn train(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
) -> Result<TrainingHistory, CoreError> {
    train_with_engine(circuit, observable, initial_params, optimizer, iterations, &Adjoint)
}

/// [`train`] with an explicit gradient engine (used by tests to show that
/// the training trajectory is engine-independent, and by the shot-noise
/// ablation).
///
/// # Errors
///
/// Propagates configuration errors as [`CoreError`].
pub fn train_with_engine(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
    engine: &dyn GradientEngine,
) -> Result<TrainingHistory, CoreError> {
    let mut params = initial_params;
    circuit.check_params(&params)?;

    let mut losses = Vec::with_capacity(iterations + 1);
    let mut grad_norms = Vec::with_capacity(iterations);
    losses.push(expectation(circuit, &params, observable)?);

    for _ in 0..iterations {
        let grad = engine.gradient(circuit, &params, observable)?;
        grad_norms.push(grad.iter().map(|g| g * g).sum::<f64>().sqrt());
        optimizer.step(&mut params, &grad)?;
        losses.push(expectation(circuit, &params, observable)?);
    }

    Ok(TrainingHistory {
        losses,
        grad_norms,
        final_params: params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::training_ansatz;
    use crate::cost::CostKind;
    use crate::init::{FanMode, InitStrategy};
    use crate::optim::{Adam, GradientDescent};
    use plateau_grad::ParameterShift;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    fn setup(n: usize, layers: usize, strategy: InitStrategy, seed: u64) -> (Circuit, Vec<f64>) {
        let a = training_ansatz(n, layers).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let theta = strategy
            .sample_params(&a.shape, FanMode::Qubits, &mut rng)
            .unwrap();
        (a.circuit, theta)
    }

    #[test]
    fn xavier_init_trains_to_low_cost() {
        let (c, theta) = setup(4, 3, InitStrategy::XavierNormal, 0);
        let obs = CostKind::Global.observable(4);
        let mut adam = Adam::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut adam, 50).unwrap();
        assert!(hist.final_loss() < 0.05, "final {}", hist.final_loss());
        assert_eq!(hist.losses.len(), 51);
        assert_eq!(hist.grad_norms.len(), 50);
        assert_eq!(hist.final_params.len(), c.n_params());
    }

    #[test]
    fn gd_also_decreases_cost() {
        let (c, theta) = setup(4, 2, InitStrategy::XavierUniform, 1);
        let obs = CostKind::Global.observable(4);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 50).unwrap();
        assert!(hist.improvement() > 0.0);
        assert!(hist.final_loss() < hist.initial_loss());
    }

    #[test]
    fn zero_init_stays_at_minimum() {
        let (c, _) = setup(3, 2, InitStrategy::Zero, 2);
        let theta = vec![0.0; c.n_params()];
        let obs = CostKind::Global.observable(3);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 5).unwrap();
        for l in &hist.losses {
            assert!(l.abs() < 1e-12);
        }
        for g in &hist.grad_norms {
            assert!(g.abs() < 1e-12);
        }
    }

    #[test]
    fn engine_choice_does_not_change_trajectory() {
        let (c, theta) = setup(3, 2, InitStrategy::He, 3);
        let obs = CostKind::Global.observable(3);
        let mut gd1 = GradientDescent::new(0.1).unwrap();
        let h1 = train_with_engine(&c, &obs, theta.clone(), &mut gd1, 10, &Adjoint).unwrap();
        let mut gd2 = GradientDescent::new(0.1).unwrap();
        let h2 = train_with_engine(&c, &obs, theta, &mut gd2, 10, &ParameterShift).unwrap();
        for (a, b) in h1.losses.iter().zip(h2.losses.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn history_helpers() {
        let hist = TrainingHistory {
            losses: vec![0.9, 0.5, 0.2, 0.05],
            grad_norms: vec![1.0, 0.8, 0.3],
            final_params: vec![0.0],
        };
        assert_eq!(hist.initial_loss(), 0.9);
        assert_eq!(hist.final_loss(), 0.05);
        assert_eq!(hist.iterations_to_reach(0.3), Some(2));
        assert_eq!(hist.iterations_to_reach(0.01), None);
        assert!((hist.improvement() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_records_only_initial_loss() {
        let (c, theta) = setup(2, 1, InitStrategy::Random, 4);
        let obs = CostKind::Global.observable(2);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 0).unwrap();
        assert_eq!(hist.losses.len(), 1);
        assert!(hist.grad_norms.is_empty());
    }

    #[test]
    fn wrong_param_length_is_error() {
        let (c, _) = setup(2, 1, InitStrategy::Random, 5);
        let obs = CostKind::Global.observable(2);
        let mut gd = GradientDescent::new(0.1).unwrap();
        assert!(train(&c, &obs, vec![0.0; 1], &mut gd, 1).is_err());
    }

    #[test]
    fn local_cost_trains_too() {
        let (c, theta) = setup(4, 2, InitStrategy::LeCun, 6);
        let obs = CostKind::Local.observable(4);
        let mut adam = Adam::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut adam, 40).unwrap();
        assert!(hist.final_loss() < hist.initial_loss());
    }
}
