//! Training loop for the identity-learning task (the paper's §IV-D / §V).
//!
//! Given an ansatz, a cost observable, an initial parameter vector, and an
//! optimizer, [`train`] runs a fixed number of iterations (the paper uses
//! 50) recording the loss trajectory — the data series behind Fig 5b/5c.
//!
//! The loop carries a [`BarrenPlateauAlarm`]: when the gradient norm stays
//! below a threshold for a configurable number of consecutive iterations,
//! a structured `barren_plateau_alarm` warning event is emitted through
//! `plateau-obs` and the occurrence is recorded in
//! [`TrainingHistory::plateau_alarms`].
//!
//! On top of the one-shot alarm sits an *online early-warning score*
//! ([`PlateauScore`]): the OLS slope of the log gradient-component
//! variance over a rolling window. A plateau announces itself as a flat
//! or decaying log-variance trend at tiny norms *before* the alarm's
//! streak completes; the score is recorded per iteration in
//! [`TrainingHistory::bp_scores`], published as the `train.bp_score`
//! gauge, and surfaced once per run as a `bp_early_warning` event.
//!
//! [`train_instrumented`] extends the loop with gradient-dynamics
//! telemetry: a bounded [`TimeSeries`] of loss / gradient norm / BP score
//! / per-layer gradient variances, and an experiment-ledger record (see
//! `plateau_obs::ledger`) tying the run's config, seed, and final metrics
//! to that series. Both are strictly opt-in: with telemetry off the loop
//! allocates nothing beyond what [`train`] always did.
//!
//! # Examples
//!
//! ```
//! use plateau_core::{ansatz::training_ansatz, cost::CostKind, optim::Adam, train::train};
//! use plateau_core::init::{FanMode, InitStrategy};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let a = training_ansatz(4, 2)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let theta0 = InitStrategy::XavierNormal.sample_params(&a.shape, FanMode::Qubits, &mut rng)?;
//! let mut adam = Adam::new(0.1)?;
//! let hist = train(&a.circuit, &CostKind::Global.observable(4), theta0, &mut adam, 30)?;
//! assert_eq!(hist.losses().len(), 31); // initial loss + one per iteration
//! assert!(hist.final_loss() < hist.initial_loss());
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use crate::optim::Optimizer;
use plateau_grad::{layer_grad_variances_into, Adjoint, BatchExecutor, GradientEngine};
use plateau_obs::{RunRecord, TimeSeries};
use plateau_sim::{Circuit, Observable};

/// One firing of the [`BarrenPlateauAlarm`]: the iteration at which a
/// sub-threshold gradient-norm streak reached the alarm window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlateauAlarmEvent {
    /// Zero-based iteration index at which the streak completed.
    pub iteration: usize,
    /// The gradient norm observed at that iteration.
    pub grad_norm: f64,
}

/// Health check for training runs: fires when the gradient norm stays
/// below `threshold` for `window` consecutive iterations — the operational
/// signature of a barren plateau. Each streak fires at most once; the
/// streak resets as soon as the norm recovers.
///
/// A `window` of 0 disables the alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrenPlateauAlarm {
    /// Gradient-norm threshold below which an iteration counts toward the
    /// streak.
    pub threshold: f64,
    /// Number of consecutive sub-threshold iterations required to fire.
    pub window: usize,
}

impl Default for BarrenPlateauAlarm {
    fn default() -> Self {
        BarrenPlateauAlarm {
            threshold: 1e-4,
            window: 8,
        }
    }
}

impl BarrenPlateauAlarm {
    /// Feeds one iteration's gradient norm into the streak counter held in
    /// `streak`. Returns an event exactly when the streak *reaches* the
    /// window — later iterations of the same streak stay silent.
    pub fn observe(
        &self,
        streak: &mut usize,
        iteration: usize,
        grad_norm: f64,
    ) -> Option<PlateauAlarmEvent> {
        if self.window == 0 {
            return None;
        }
        if grad_norm < self.threshold {
            *streak += 1;
            if *streak == self.window {
                return Some(PlateauAlarmEvent { iteration, grad_norm });
            }
        } else {
            *streak = 0;
        }
        None
    }
}

/// Window (in iterations) over which [`PlateauScore`] fits its rolling
/// log-variance slope. Matches the default alarm window so the score
/// matures exactly when the alarm could first fire.
pub const BP_SCORE_WINDOW: usize = 8;

/// Gradient-norm ceiling for the `bp_early_warning` event: the slope test
/// only means "plateau" when gradients are already small (10× the default
/// alarm threshold), not during an ordinary descent whose log-variance
/// also trends down.
pub const BP_WARN_NORM: f64 = 1e-3;

/// Slope ceiling for the `bp_early_warning` event: a healthy escape shows
/// clearly *growing* variance, so anything at or below this weakly
/// positive slope counts as flat-or-decaying.
pub const BP_WARN_SLOPE: f64 = 0.05;

/// Online barren-plateau early-warning score.
///
/// Feeds the population variance of each iteration's gradient components
/// into a rolling window of `ln(variance)` values and reports the OLS
/// slope of that window (via `plateau_stats::fit_line`) — the same
/// log-linear decay fit the paper applies across qubit counts, here
/// applied across iterations of a single run. A near-zero or negative
/// slope at small gradient norms is the operational "heading into a
/// plateau" signature, and unlike [`BarrenPlateauAlarm`]'s binary streak
/// it grades *how fast* the variance is collapsing.
///
/// The window is preallocated: `observe` is allocation-free after
/// construction, fit included.
#[derive(Debug, Clone)]
pub struct PlateauScore {
    window: usize,
    /// Precomputed abscissae `0..window` for the rolling fit.
    xs: Vec<f64>,
    log_vars: Vec<f64>,
}

impl PlateauScore {
    /// Floor applied to the variance before the log, so an exactly-zero
    /// gradient (deep plateau) yields a large-negative but finite value
    /// instead of `-inf` (which would poison the fit).
    const VAR_FLOOR: f64 = 1e-300;

    /// A score with the given rolling window (clamped to at least 2, the
    /// minimum a line fit needs).
    pub fn new(window: usize) -> PlateauScore {
        let window = window.max(2);
        PlateauScore {
            window,
            xs: (0..window).map(|i| i as f64).collect(),
            log_vars: Vec::with_capacity(window),
        }
    }

    /// Feeds one iteration's gradient and returns the current rolling
    /// slope, or `NaN` until the window has filled (or when the gradient
    /// is empty / non-finite).
    pub fn observe(&mut self, gradient: &[f64]) -> f64 {
        if gradient.is_empty() {
            return f64::NAN;
        }
        let n = gradient.len() as f64;
        let mean = gradient.iter().sum::<f64>() / n;
        let var = gradient.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
        if self.log_vars.len() == self.window {
            // O(window) shift within preallocated storage; no realloc.
            self.log_vars.remove(0);
        }
        self.log_vars.push(var.max(Self::VAR_FLOOR).ln());
        if self.log_vars.len() < self.window {
            return f64::NAN;
        }
        match plateau_stats::fit_line(&self.xs, &self.log_vars) {
            Ok(fit) => fit.slope,
            Err(_) => f64::NAN,
        }
    }
}

/// The recorded trajectory of one training run.
///
/// Guaranteed non-empty: every constructor validates that there is at
/// least one loss entry and that `grad_norms` holds exactly one entry per
/// iteration (`losses.len() - 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingHistory {
    pub(crate) losses: Vec<f64>,
    pub(crate) grad_norms: Vec<f64>,
    pub(crate) final_params: Vec<f64>,
    pub(crate) plateau_alarms: Vec<PlateauAlarmEvent>,
    pub(crate) bp_scores: Vec<f64>,
}

impl TrainingHistory {
    /// Builds a history, enforcing the structural invariants that the
    /// accessors rely on.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `losses` is empty or when
    /// `grad_norms.len() + 1 != losses.len()`.
    pub fn new(
        losses: Vec<f64>,
        grad_norms: Vec<f64>,
        final_params: Vec<f64>,
    ) -> Result<TrainingHistory, CoreError> {
        if losses.is_empty() {
            return Err(CoreError::InvalidConfig(
                "training history needs at least one loss entry".into(),
            ));
        }
        if grad_norms.len() + 1 != losses.len() {
            return Err(CoreError::InvalidConfig(format!(
                "training history needs one gradient norm per iteration: \
                 {} losses imply {} norms, got {}",
                losses.len(),
                losses.len() - 1,
                grad_norms.len()
            )));
        }
        Ok(TrainingHistory {
            losses,
            grad_norms,
            final_params,
            plateau_alarms: Vec::new(),
            bp_scores: Vec::new(),
        })
    }

    /// Loss before training plus after each iteration
    /// (`iterations + 1` entries).
    pub fn losses(&self) -> &[f64] {
        &self.losses
    }

    /// L2 norm of the gradient at each iteration (`iterations` entries).
    pub fn grad_norms(&self) -> &[f64] {
        &self.grad_norms
    }

    /// Parameters after the final iteration.
    pub fn final_params(&self) -> &[f64] {
        &self.final_params
    }

    /// Barren-plateau alarms raised during the run, in firing order.
    pub fn plateau_alarms(&self) -> &[PlateauAlarmEvent] {
        &self.plateau_alarms
    }

    /// The [`PlateauScore`] at each iteration (`iterations` entries for
    /// histories produced by the training loop; `NaN` until the rolling
    /// window fills). Empty for histories assembled via [`Self::new`].
    pub fn bp_scores(&self) -> &[f64] {
        &self.bp_scores
    }

    /// The most recent mature (finite) early-warning score, or `None`
    /// when the run was shorter than the scoring window.
    pub fn final_bp_score(&self) -> Option<f64> {
        self.bp_scores.iter().rev().copied().find(|s| s.is_finite())
    }

    /// Loss at initialization.
    pub fn initial_loss(&self) -> f64 {
        self.losses[0]
    }

    /// Loss after the final iteration. Total by construction: the
    /// validating constructors reject empty histories.
    pub fn final_loss(&self) -> f64 {
        self.losses[self.losses.len() - 1]
    }

    /// First iteration (1-based) at which the loss drops below `threshold`,
    /// or `None` if it never does. Iteration 0 means "already below at
    /// initialization".
    pub fn iterations_to_reach(&self, threshold: f64) -> Option<usize> {
        self.losses.iter().position(|&l| l < threshold)
    }

    /// Total loss reduction, `initial − final`.
    pub fn improvement(&self) -> f64 {
        self.initial_loss() - self.final_loss()
    }
}

/// Trains `circuit` against `observable` for `iterations` steps using the
/// exact adjoint gradient, mutating a copy of `initial_params` with
/// `optimizer`.
///
/// # Errors
///
/// Propagates configuration errors (parameter-count mismatches, optimizer
/// length mismatches) as [`CoreError`].
pub fn train(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
) -> Result<TrainingHistory, CoreError> {
    train_with_engine(circuit, observable, initial_params, optimizer, iterations, &Adjoint)
}

/// [`train`] with an explicit gradient engine (used by tests to show that
/// the training trajectory is engine-independent, and by the shot-noise
/// ablation). Runs the default [`BarrenPlateauAlarm`].
///
/// # Errors
///
/// Propagates configuration errors as [`CoreError`].
pub fn train_with_engine(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
    engine: &dyn GradientEngine,
) -> Result<TrainingHistory, CoreError> {
    train_with_alarm(
        circuit,
        observable,
        initial_params,
        optimizer,
        iterations,
        engine,
        &BarrenPlateauAlarm::default(),
    )
}

/// [`train_with_engine`] with an explicit [`BarrenPlateauAlarm`]
/// configuration.
///
/// # Errors
///
/// Propagates configuration errors as [`CoreError`].
pub fn train_with_alarm(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
    engine: &dyn GradientEngine,
    alarm: &BarrenPlateauAlarm,
) -> Result<TrainingHistory, CoreError> {
    train_instrumented(
        circuit,
        observable,
        initial_params,
        optimizer,
        iterations,
        engine,
        alarm,
        TrainTelemetry::default(),
    )
    .map(|run| run.history)
}

/// Opt-in telemetry configuration for [`train_instrumented`].
///
/// The default is fully off: no time series, no ledger record, and the
/// training hot loop allocates exactly what [`train`] always did.
#[derive(Debug, Default)]
pub struct TrainTelemetry {
    /// Layer width of the ansatz's parameter vector. When set, the time
    /// series gains one `layer_var_<i>` column per layer carrying that
    /// layer's gradient-component variance — the paper's per-layer
    /// barren-plateau profile, live.
    pub params_per_layer: Option<usize>,
    /// Maximum retained rows in the time series (0 → the 256-row
    /// default). Longer runs are decimated, never truncated.
    pub series_capacity: usize,
    /// Record the time series even when no ledger record is requested
    /// (it is then only returned in [`TrainRun::series`]).
    pub record_series: bool,
    /// When set *and* the ledger is enabled, one run record with these
    /// config/seed fields plus the loop's final metrics is appended to
    /// the experiment ledger, pointing at the recorded series.
    pub run: Option<RunRecord>,
}

impl TrainTelemetry {
    const DEFAULT_SERIES_CAPACITY: usize = 256;

    /// Telemetry that records a series and a ledger entry for `run`
    /// (ledger permitting), with per-layer attribution at `ppl`.
    pub fn for_run(run: RunRecord, params_per_layer: usize) -> TrainTelemetry {
        TrainTelemetry {
            params_per_layer: Some(params_per_layer),
            series_capacity: 0,
            record_series: true,
            run: Some(run),
        }
    }
}

/// Everything [`train_instrumented`] produces: the ordinary history plus
/// the recorded series and the ledger id (when telemetry asked for them).
#[derive(Debug)]
pub struct TrainRun {
    /// The training trajectory, exactly as [`train_with_alarm`] returns.
    pub history: TrainingHistory,
    /// The recorded gradient-dynamics series, when recording was on.
    pub series: Option<TimeSeries>,
    /// The ledger run id, when a record was requested and the ledger is
    /// enabled.
    pub run_id: Option<String>,
}

/// [`train_with_alarm`] plus gradient-dynamics telemetry (see
/// [`TrainTelemetry`]). This is the single real training loop; the
/// simpler entry points delegate here with telemetry off.
///
/// Ledger/series IO failures never fail the training run: the science
/// result is the history, so write errors are demoted to a `plateau-obs`
/// warning ([`CoreError`] deliberately has no IO variant).
///
/// # Errors
///
/// Propagates configuration errors as [`CoreError`].
#[allow(clippy::too_many_arguments)]
pub fn train_instrumented(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    optimizer: &mut dyn Optimizer,
    iterations: usize,
    engine: &dyn GradientEngine,
    alarm: &BarrenPlateauAlarm,
    telemetry: TrainTelemetry,
) -> Result<TrainRun, CoreError> {
    let mut params = initial_params;
    circuit.check_params(&params)?;

    let _span = plateau_obs::span!("train", iterations = iterations, params = params.len());

    let recording = telemetry.record_series
        || (telemetry.run.is_some() && plateau_obs::ledger_enabled());
    let ppl = telemetry.params_per_layer.filter(|&p| p > 0);
    let n_layers = ppl.map_or(0, |p| params.len().div_ceil(p));
    let mut series = if recording {
        let mut columns = vec![
            "loss".to_string(),
            "grad_norm".to_string(),
            "bp_score".to_string(),
        ];
        for i in 0..n_layers {
            columns.push(format!("layer_var_{i}"));
        }
        let capacity = if telemetry.series_capacity == 0 {
            TrainTelemetry::DEFAULT_SERIES_CAPACITY
        } else {
            telemetry.series_capacity
        };
        Some(TimeSeries::new(columns, capacity))
    } else {
        None
    };
    // Scratch buffers for the recording path, allocated once up front so
    // the per-iteration work is push-only.
    let mut row: Vec<f64> = Vec::with_capacity(if recording { 3 + n_layers } else { 0 });
    let mut layer_vars: Vec<f64> = Vec::with_capacity(if recording { n_layers } else { 0 });

    let mut losses = Vec::with_capacity(iterations + 1);
    let mut grad_norms = Vec::with_capacity(iterations);
    let mut alarms = Vec::new();
    let mut streak = 0usize;
    let mut score = PlateauScore::new(BP_SCORE_WINDOW);
    let mut bp_scores = Vec::with_capacity(iterations);
    let mut warned = false;
    // One compile + one reusable scratch statevector for every loss
    // evaluation across the whole run (the per-iteration gradient still
    // goes through `engine`, whose adjoint path owns its own scratch).
    let mut evaluator = BatchExecutor::new(circuit);
    losses.push(evaluator.expectation(&params, observable)?);

    for it in 0..iterations {
        let grad = engine.gradient(circuit, &params, observable)?;
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        plateau_obs::gauge!("train.grad_norm").set(norm);
        grad_norms.push(norm);
        if let Some(event) = alarm.observe(&mut streak, it, norm) {
            plateau_obs::event!(
                plateau_obs::Level::Warn,
                "barren_plateau_alarm",
                iteration = event.iteration,
                grad_norm = event.grad_norm,
                threshold = alarm.threshold,
                window = alarm.window
            );
            alarms.push(event);
        }
        let bp = score.observe(&grad);
        bp_scores.push(bp);
        if bp.is_finite() {
            plateau_obs::gauge!("train.bp_score").set(bp);
            if !warned && norm < BP_WARN_NORM && bp <= BP_WARN_SLOPE {
                warned = true;
                plateau_obs::event!(
                    plateau_obs::Level::Warn,
                    "bp_early_warning",
                    iteration = it,
                    bp_score = bp,
                    grad_norm = norm
                );
            }
        }
        if let Some(series) = series.as_mut() {
            row.clear();
            row.push(losses[it]);
            row.push(norm);
            row.push(bp);
            if let Some(p) = ppl {
                layer_grad_variances_into(&grad, p, &mut layer_vars);
                row.extend_from_slice(&layer_vars);
            }
            series.push(it as f64, &row);
        }
        optimizer.step(&mut params, &grad)?;
        plateau_obs::counter!("train.optimizer_steps").inc();
        losses.push(evaluator.expectation(&params, observable)?);
    }

    let mut hist = TrainingHistory::new(losses, grad_norms, params)?;
    hist.plateau_alarms = alarms;
    hist.bp_scores = bp_scores;

    let mut run_id = None;
    if let Some(run) = telemetry.run {
        let mut run = run
            .metric("initial_loss", hist.initial_loss())
            .metric("final_loss", hist.final_loss())
            .metric(
                "final_grad_norm",
                hist.grad_norms.last().copied().unwrap_or(f64::NAN),
            )
            .metric("plateau_alarms", hist.plateau_alarms.len() as f64);
        if let Some(bp) = hist.final_bp_score() {
            run = run.metric("bp_score_final", bp);
        }
        match plateau_obs::record_run(&run, series.as_ref()) {
            Ok(id) => run_id = id,
            Err(e) => plateau_obs::warn!("train: ledger write failed: {e}"),
        }
    }

    Ok(TrainRun {
        history: hist,
        series,
        run_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::training_ansatz;
    use crate::cost::CostKind;
    use crate::init::{FanMode, InitStrategy};
    use crate::optim::{Adam, GradientDescent};
    use plateau_grad::ParameterShift;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    fn setup(n: usize, layers: usize, strategy: InitStrategy, seed: u64) -> (Circuit, Vec<f64>) {
        let a = training_ansatz(n, layers).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let theta = strategy
            .sample_params(&a.shape, FanMode::Qubits, &mut rng)
            .unwrap();
        (a.circuit, theta)
    }

    #[test]
    fn xavier_init_trains_to_low_cost() {
        let (c, theta) = setup(4, 3, InitStrategy::XavierNormal, 0);
        let obs = CostKind::Global.observable(4);
        let mut adam = Adam::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut adam, 50).unwrap();
        assert!(hist.final_loss() < 0.05, "final {}", hist.final_loss());
        assert_eq!(hist.losses().len(), 51);
        assert_eq!(hist.grad_norms().len(), 50);
        assert_eq!(hist.final_params().len(), c.n_params());
    }

    #[test]
    fn gd_also_decreases_cost() {
        let (c, theta) = setup(4, 2, InitStrategy::XavierUniform, 1);
        let obs = CostKind::Global.observable(4);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 50).unwrap();
        assert!(hist.improvement() > 0.0);
        assert!(hist.final_loss() < hist.initial_loss());
    }

    #[test]
    fn zero_init_stays_at_minimum() {
        let (c, _) = setup(3, 2, InitStrategy::Zero, 2);
        let theta = vec![0.0; c.n_params()];
        let obs = CostKind::Global.observable(3);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 5).unwrap();
        for l in hist.losses() {
            assert!(l.abs() < 1e-12);
        }
        for g in hist.grad_norms() {
            assert!(g.abs() < 1e-12);
        }
    }

    #[test]
    fn engine_choice_does_not_change_trajectory() {
        let (c, theta) = setup(3, 2, InitStrategy::He, 3);
        let obs = CostKind::Global.observable(3);
        let mut gd1 = GradientDescent::new(0.1).unwrap();
        let h1 = train_with_engine(&c, &obs, theta.clone(), &mut gd1, 10, &Adjoint).unwrap();
        let mut gd2 = GradientDescent::new(0.1).unwrap();
        let h2 = train_with_engine(&c, &obs, theta, &mut gd2, 10, &ParameterShift).unwrap();
        for (a, b) in h1.losses().iter().zip(h2.losses().iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn history_helpers() {
        let hist = TrainingHistory::new(
            vec![0.9, 0.5, 0.2, 0.05],
            vec![1.0, 0.8, 0.3],
            vec![0.0],
        )
        .unwrap();
        assert_eq!(hist.initial_loss(), 0.9);
        assert_eq!(hist.final_loss(), 0.05);
        assert_eq!(hist.iterations_to_reach(0.3), Some(2));
        assert_eq!(hist.iterations_to_reach(0.01), None);
        assert!((hist.improvement() - 0.85).abs() < 1e-12);
        assert!(hist.plateau_alarms().is_empty());
    }

    #[test]
    fn iterations_to_reach_edge_cases() {
        // Threshold already met at initialization → iteration 0.
        let below_at_start =
            TrainingHistory::new(vec![0.01, 0.5], vec![1.0], vec![0.0]).unwrap();
        assert_eq!(below_at_start.iterations_to_reach(0.1), Some(0));
        // Threshold never met → None (including exact equality: strictly
        // below is required).
        let never = TrainingHistory::new(vec![0.5, 0.5, 0.5], vec![1.0, 1.0], vec![0.0]).unwrap();
        assert_eq!(never.iterations_to_reach(0.5), None);
        assert_eq!(never.iterations_to_reach(0.1), None);
        // Single-entry history (zero iterations).
        let single = TrainingHistory::new(vec![0.3], vec![], vec![]).unwrap();
        assert_eq!(single.iterations_to_reach(0.4), Some(0));
        assert_eq!(single.iterations_to_reach(0.2), None);
    }

    #[test]
    fn constructor_enforces_invariants() {
        assert!(TrainingHistory::new(vec![], vec![], vec![]).is_err());
        assert!(TrainingHistory::new(vec![0.5], vec![1.0], vec![]).is_err());
        assert!(TrainingHistory::new(vec![0.5, 0.4], vec![1.0, 0.9], vec![]).is_err());
        assert!(TrainingHistory::new(vec![0.5, 0.4], vec![1.0], vec![]).is_ok());
    }

    #[test]
    fn alarm_fires_once_per_streak_and_resets() {
        let alarm = BarrenPlateauAlarm {
            threshold: 0.1,
            window: 3,
        };
        let mut streak = 0;
        // Two sub-threshold, one recovery, then a full streak of four: the
        // alarm fires exactly once, at the third consecutive low norm.
        let norms = [0.01, 0.02, 0.5, 0.01, 0.01, 0.01, 0.01];
        let mut events = Vec::new();
        for (it, &n) in norms.iter().enumerate() {
            if let Some(e) = alarm.observe(&mut streak, it, n) {
                events.push(e);
            }
        }
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].iteration, 5);
        assert_eq!(events[0].grad_norm, 0.01);
        // window = 0 disables the alarm entirely.
        let off = BarrenPlateauAlarm { threshold: 0.1, window: 0 };
        let mut s = 0;
        assert!(off.observe(&mut s, 0, 0.0).is_none());
    }

    #[test]
    fn plateau_alarm_surfaces_in_history() {
        // Zero-init on the identity learner sits exactly on the plateau:
        // every gradient norm is ~0, so the default window-8 alarm fires at
        // iteration 7 and only once.
        let (c, _) = setup(3, 2, InitStrategy::Zero, 7);
        let theta = vec![0.0; c.n_params()];
        let obs = CostKind::Global.observable(3);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 12).unwrap();
        assert_eq!(hist.plateau_alarms().len(), 1);
        assert_eq!(hist.plateau_alarms()[0].iteration, 7);
        assert!(hist.plateau_alarms()[0].grad_norm < 1e-4);
        // A healthy run raises no alarm.
        let (c2, theta2) = setup(4, 3, InitStrategy::XavierNormal, 0);
        let obs2 = CostKind::Global.observable(4);
        let mut adam = Adam::new(0.1).unwrap();
        let healthy = train(&c2, &obs2, theta2, &mut adam, 20).unwrap();
        assert!(healthy.plateau_alarms().is_empty());
    }

    #[test]
    fn plateau_score_matures_after_window_and_grades_decay() {
        let mut score = PlateauScore::new(4);
        // Exponentially decaying gradients: variance shrinks each step, so
        // once mature the log-variance slope is clearly negative.
        let mut slopes = Vec::new();
        for it in 0..8 {
            let s = 0.5f64.powi(it);
            slopes.push(score.observe(&[s, -s, 2.0 * s, 0.0]));
        }
        for s in &slopes[..3] {
            assert!(s.is_nan(), "immature window must report NaN, got {s}");
        }
        for s in &slopes[3..] {
            // Var ∝ (0.5^it)² → ln drops by 2·ln 2 per iteration.
            assert!((s - (-2.0 * 2.0f64.ln())).abs() < 1e-9, "slope {s}");
        }
        // A dead-flat (zero) gradient floors instead of producing -inf,
        // and the rolling slope settles at 0 — flat, not escaping.
        let mut dead = PlateauScore::new(3);
        let mut last = f64::NAN;
        for _ in 0..5 {
            last = dead.observe(&[0.0, 0.0]);
        }
        assert_eq!(last, 0.0);
        // Empty gradients never score.
        assert!(PlateauScore::new(2).observe(&[]).is_nan());
    }

    #[test]
    fn bp_scores_surface_in_history() {
        // Zero-init sits on the plateau: scores are NaN until the window
        // fills at iteration BP_SCORE_WINDOW-1, then flat (≈0) — at or
        // below the early-warning slope while norms sit under the norm
        // gate, i.e. the score flags the plateau the alarm also catches.
        let (c, _) = setup(3, 2, InitStrategy::Zero, 8);
        let theta = vec![0.0; c.n_params()];
        let obs = CostKind::Global.observable(3);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 12).unwrap();
        assert_eq!(hist.bp_scores().len(), 12);
        for s in &hist.bp_scores()[..BP_SCORE_WINDOW - 1] {
            assert!(s.is_nan());
        }
        for (s, n) in hist.bp_scores()[BP_SCORE_WINDOW - 1..]
            .iter()
            .zip(&hist.grad_norms()[BP_SCORE_WINDOW - 1..])
        {
            assert!(s.is_finite());
            assert!(*s <= BP_WARN_SLOPE, "plateau slope {s} not flagged");
            assert!(*n < BP_WARN_NORM);
        }
        assert_eq!(hist.final_bp_score(), Some(hist.bp_scores()[11]));
        // Histories assembled by hand carry no scores.
        let hand = TrainingHistory::new(vec![0.5, 0.4], vec![1.0], vec![]).unwrap();
        assert!(hand.bp_scores().is_empty());
        assert_eq!(hand.final_bp_score(), None);
    }

    #[test]
    fn instrumented_run_records_series_and_ledger_entry() {
        let _guard = plateau_obs::test_lock();
        let dir = std::env::temp_dir().join(format!("plateau_train_ledger_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        plateau_obs::set_ledger_dir(Some(&dir));

        let (c, theta) = setup(3, 2, InitStrategy::XavierNormal, 9);
        let ppl = c.n_params() / 2; // training ansatz: layer-major, 2 layers
        let obs = CostKind::Global.observable(3);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let telemetry = TrainTelemetry::for_run(
            RunRecord::new("train").seed(9),
            ppl,
        );
        let run = train_instrumented(&c, &obs, theta, &mut gd, 10, &Adjoint, &Default::default(), telemetry)
            .unwrap();

        let series = run.series.as_ref().expect("series recorded");
        assert_eq!(
            series.columns(),
            ["loss", "grad_norm", "bp_score", "layer_var_0", "layer_var_1"]
        );
        assert_eq!(series.len(), 10);
        let losses = series.column("loss").unwrap();
        // Row i carries the pre-step loss, i.e. history.losses()[i].
        assert_eq!(losses[0].1, run.history.initial_loss());

        let id = run.run_id.expect("ledger enabled → id");
        let text = std::fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
        assert!(text.contains(&id));
        assert!(text.contains("\"final_loss\""));
        assert!(dir.join("runs").join(format!("{id}.jsonl")).exists());

        plateau_obs::set_ledger_dir(None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let _guard = plateau_obs::test_lock();
        plateau_obs::set_ledger_dir(None);
        let (c, theta) = setup(2, 1, InitStrategy::Random, 10);
        let obs = CostKind::Global.observable(2);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let run = train_instrumented(
            &c,
            &obs,
            theta,
            &mut gd,
            3,
            &Adjoint,
            &Default::default(),
            TrainTelemetry::default(),
        )
        .unwrap();
        assert!(run.series.is_none());
        assert!(run.run_id.is_none());
        // A ledger-bearing run with the ledger disabled stays silent too
        // unless the series itself was requested.
        plateau_obs::reset_ledger();
    }

    #[test]
    fn zero_iterations_records_only_initial_loss() {
        let (c, theta) = setup(2, 1, InitStrategy::Random, 4);
        let obs = CostKind::Global.observable(2);
        let mut gd = GradientDescent::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut gd, 0).unwrap();
        assert_eq!(hist.losses().len(), 1);
        assert!(hist.grad_norms().is_empty());
    }

    #[test]
    fn wrong_param_length_is_error() {
        let (c, _) = setup(2, 1, InitStrategy::Random, 5);
        let obs = CostKind::Global.observable(2);
        let mut gd = GradientDescent::new(0.1).unwrap();
        assert!(train(&c, &obs, vec![0.0; 1], &mut gd, 1).is_err());
    }

    #[test]
    fn local_cost_trains_too() {
        let (c, theta) = setup(4, 2, InitStrategy::LeCun, 6);
        let obs = CostKind::Local.observable(4);
        let mut adam = Adam::new(0.1).unwrap();
        let hist = train(&c, &obs, theta, &mut adam, 40).unwrap();
        assert!(hist.final_loss() < hist.initial_loss());
    }
}
