//! # plateau-core
//!
//! The primary contribution of the DATE 2024 paper *"Alleviating Barren
//! Plateaus in Parameterized Quantum Machine Learning Circuits:
//! Investigating Advanced Parameter Initialization Strategies"*, rebuilt as
//! a Rust library on top of the `plateau-sim`/`plateau-grad` substrate:
//!
//! - [`init`]: the six classical initialization strategies (Random, Xavier
//!   normal/uniform, He, LeCun, Orthogonal) plus extension baselines
//!   (BeInit, Zero), with explicit PQC fan semantics.
//! - [`ansatz`]: the paper's hardware-efficient ansätze — the randomized
//!   variance-analysis circuits (Eq. 2) and the RX·RY + CZ-chain training
//!   circuit (Eq. 3).
//! - [`cost`]: the global identity-learning cost (Eq. 4) and the local
//!   alternative.
//! - [`optim`]: Gradient Descent and Adam (the paper's optimizers, step
//!   0.1) plus Momentum/RMSProp/AdaGrad for ablations.
//! - [`mod@train`]: the 50-iteration training loop behind Fig 5b/5c.
//! - [`variance`]: the 200-circuit gradient-variance harness behind Fig 5a
//!   and the headline improvement percentages.
//! - [`landscape`]: the 2-D cost-surface scanner behind Fig 1.
//!
//! # Examples
//!
//! The paper's experiment in miniature — Xavier initialization keeps
//! gradient variance alive where random initialization kills it:
//!
//! ```
//! use plateau_core::init::InitStrategy;
//! use plateau_core::variance::{variance_scan, VarianceConfig};
//!
//! let cfg = VarianceConfig {
//!     qubit_counts: vec![2, 4, 6],
//!     layers: 20,
//!     n_circuits: 50,
//!     ..VarianceConfig::default()
//! };
//! let scan = variance_scan(&cfg, &[InitStrategy::Random, InitStrategy::XavierNormal])?;
//! let random_rate = scan.curve_of(InitStrategy::Random).unwrap().decay_fit()?.rate;
//! let xavier_rate = scan.curve_of(InitStrategy::XavierNormal).unwrap().decay_fit()?.rate;
//! assert!(xavier_rate.abs() < random_rate.abs()); // shallower plateau
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ansatz;
pub mod cost;
pub mod error;
pub mod init;
pub mod landscape;
pub mod mitigation;
pub mod optim;
pub mod qng;
pub mod spsa;
pub mod theory;
pub mod train;
pub mod variance;

pub use analysis::{average_entanglement, expressibility_kl};
pub use ansatz::{training_ansatz, variance_ansatz, Ansatz};
pub use cost::CostKind;
pub use error::CoreError;
pub use init::{FanMode, InitStrategy, LayerShape};
pub use landscape::{landscape_grid, LandscapeConfig, LandscapeGrid};
pub use mitigation::{identity_block_ansatz, identity_block_params, train_layerwise};
pub use optim::{Adam, AdaGrad, GradientDescent, Momentum, Optimizer, RmsProp, Schedule};
pub use qng::{train_qng, QngConfig};
pub use spsa::{train_spsa, SpsaConfig};
pub use theory::{is_two_design_rate, near_identity_gradient_variance, two_design_decay_rate};
pub use train::{
    train, train_instrumented, train_with_engine, PlateauScore, TrainRun, TrainTelemetry,
    TrainingHistory,
};
pub use variance::{
    variance_scan, AnsatzKind, GradEngineKind, Improvement, StrategyCurve, VarianceConfig,
    VariancePoint, VarianceScan,
};
