//! Parameter-initialization strategies (the paper's §III).
//!
//! Classical deep-learning initializers are defined for dense layers with
//! `fan_in` inputs and `fan_out` outputs. A PQC has no literal fan-in, so a
//! mapping must be chosen; [`FanMode`] makes that choice explicit and
//! ablatable:
//!
//! - [`FanMode::Qubits`] (default, used for the headline reproduction):
//!   one HEA layer on `q` qubits ↦ a `q → q` dense layer, so
//!   `fan_in = fan_out = q`.
//! - [`FanMode::ParamsPerLayer`]: `fan_in = fan_out =` number of rotation
//!   parameters per layer (e.g. `2q` for the paper's training ansatz).
//!
//! Note that with `fan_in = fan_out = n`, Xavier-normal (`Var = 2/(2n)`)
//! and LeCun (`Var = 1/n`) coincide exactly; the paper's measured gap
//! between them is a narrow empirical delta, which EXPERIMENTS.md discusses
//! honestly.
//!
//! # Examples
//!
//! ```
//! use plateau_core::init::{FanMode, InitStrategy, LayerShape};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let shape = LayerShape::new(10, 20, 5)?; // 10 qubits, 2 gates/qubit, 5 layers
//! let mut rng = StdRng::seed_from_u64(0);
//! let theta = InitStrategy::XavierNormal.sample_params(&shape, FanMode::Qubits, &mut rng)?;
//! assert_eq!(theta.len(), 100);
//! // Xavier-normal angles are small: std = sqrt(2/(10+10)) ≈ 0.32.
//! let spread = theta.iter().map(|t| t * t).sum::<f64>() / 100.0;
//! assert!(spread < 0.5);
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use plateau_linalg::{qr_decompose_signfixed, RMatrix};
use plateau_stats::{Beta, Normal, Sampler, Uniform};
use plateau_rng::Rng;
use std::f64::consts::PI;
use std::fmt;

/// How a PQC layer is mapped to the `(fan_in, fan_out)` of a classical
/// dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanMode {
    /// `fan_in = fan_out = n_qubits` — the interpretation used for the
    /// headline reproduction.
    #[default]
    Qubits,
    /// `fan_in = fan_out = params_per_layer`.
    ParamsPerLayer,
    /// PyTorch-faithful: treat the parameter array of shape
    /// `(layers, params_per_layer)` as a weight tensor, so
    /// `fan_in = params_per_layer` (columns) and `fan_out = layers` (rows)
    /// — what `torch.nn.init` computes when the paper's PennyLane pipeline
    /// hands its parameter tensor to the stock initializers. With deep
    /// circuits this makes Xavier's variance `2/(q + layers)` — far
    /// smaller than He/LeCun's `∝ 1/q` — which reproduces the paper's
    /// large Xavier margin.
    TensorShape,
}

/// Geometry of a layered ansatz: enough information for every initializer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerShape {
    n_qubits: usize,
    params_per_layer: usize,
    layers: usize,
}

impl LayerShape {
    /// Describes an ansatz with `layers` repetitions of a block holding
    /// `params_per_layer` rotation parameters over `n_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when any field is zero.
    pub fn new(
        n_qubits: usize,
        params_per_layer: usize,
        layers: usize,
    ) -> Result<LayerShape, CoreError> {
        if n_qubits == 0 || params_per_layer == 0 || layers == 0 {
            return Err(CoreError::InvalidConfig(
                "layer shape fields must be nonzero".into(),
            ));
        }
        Ok(LayerShape {
            n_qubits,
            params_per_layer,
            layers,
        })
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Rotation parameters per layer.
    pub fn params_per_layer(&self) -> usize {
        self.params_per_layer
    }

    /// Layer count.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Total trainable parameters `layers × params_per_layer`.
    pub fn n_params(&self) -> usize {
        self.layers * self.params_per_layer
    }

    /// The `(fan_in, fan_out)` pair under a fan mode.
    pub fn fans(&self, mode: FanMode) -> (usize, usize) {
        match mode {
            FanMode::Qubits => (self.n_qubits, self.n_qubits),
            FanMode::ParamsPerLayer => (self.params_per_layer, self.params_per_layer),
            FanMode::TensorShape => (self.params_per_layer, self.layers),
        }
    }
}

/// A parameter-initialization strategy.
///
/// The six paper strategies are [`InitStrategy::PAPER_SET`]; the extras
/// ([`InitStrategy::BetaInit`], [`InitStrategy::Zero`]) are baselines from
/// the related-work discussion used in the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitStrategy {
    /// Angles uniform on `[0, 2π)` — the barren-plateau-prone baseline
    /// (PennyLane's convention for random PQC parameters).
    Random,
    /// `N(0, 2/(fan_in + fan_out))` (Glorot & Bengio 2010).
    XavierNormal,
    /// `U(−L, L)` with `L = sqrt(6/(fan_in + fan_out))`.
    XavierUniform,
    /// `N(0, 2/fan_in)` (He et al. 2015).
    He,
    /// `N(0, 1/fan_in)` (LeCun et al.).
    LeCun,
    /// Per-layer orthogonal discipline (Hu, Xiao & Pennington 2020): the
    /// layer axis is filled with rows of independent Haar-random
    /// `(params_per_layer × params_per_layer)` orthogonal matrices, scaled
    /// by `gain`. Per-angle variance is `1/params_per_layer`.
    Orthogonal {
        /// Multiplicative gain applied to the orthogonal matrix (1.0 in
        /// the paper's setting).
        gain: f64,
    },
    /// BeInit (Kulshrestha & Safro 2022, §II-e of the paper):
    /// `θ = π·(2x − 1)` with `x ~ Beta(α, β)`.
    BetaInit {
        /// Beta shape α.
        alpha: f64,
        /// Beta shape β.
        beta: f64,
    },
    /// All-zeros (identity circuit) — a degenerate reference point.
    Zero,
}

impl InitStrategy {
    /// The six strategies evaluated in the paper, in its reporting order.
    pub const PAPER_SET: [InitStrategy; 6] = [
        InitStrategy::Random,
        InitStrategy::XavierNormal,
        InitStrategy::XavierUniform,
        InitStrategy::He,
        InitStrategy::LeCun,
        InitStrategy::Orthogonal { gain: 1.0 },
    ];

    /// Short machine-friendly name (used as a column key in bench output).
    pub fn name(&self) -> &'static str {
        match self {
            InitStrategy::Random => "random",
            InitStrategy::XavierNormal => "xavier_normal",
            InitStrategy::XavierUniform => "xavier_uniform",
            InitStrategy::He => "he",
            InitStrategy::LeCun => "lecun",
            InitStrategy::Orthogonal { .. } => "orthogonal",
            InitStrategy::BetaInit { .. } => "beta",
            InitStrategy::Zero => "zero",
        }
    }

    /// Theoretical variance of a single sampled angle under this strategy,
    /// or `None` where it depends on the realized orthogonal matrix.
    pub fn nominal_variance(&self, shape: &LayerShape, mode: FanMode) -> Option<f64> {
        let (fan_in, fan_out) = shape.fans(mode);
        match self {
            InitStrategy::Random => Some((2.0 * PI) * (2.0 * PI) / 12.0),
            InitStrategy::XavierNormal => Some(2.0 / (fan_in + fan_out) as f64),
            InitStrategy::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
                Some(limit * limit / 3.0)
            }
            InitStrategy::He => Some(2.0 / fan_in as f64),
            InitStrategy::LeCun => Some(1.0 / fan_in as f64),
            // Every row of a Haar orthogonal matrix is a unit vector, so
            // the mean-square angle is exactly gain²/params_per_layer.
            InitStrategy::Orthogonal { gain } => {
                Some(gain * gain / shape.params_per_layer() as f64)
            }
            InitStrategy::BetaInit { alpha, beta } => {
                // θ = π(2x − 1) scales Var[x] by (2π)².
                let s = alpha + beta;
                Some((2.0 * PI).powi(2) * alpha * beta / (s * s * (s + 1.0)))
            }
            InitStrategy::Zero => Some(0.0),
        }
    }

    /// Samples a full parameter vector for an ansatz of the given shape.
    ///
    /// The returned vector has length [`LayerShape::n_params`] and is laid
    /// out layer-major (all of layer 0's parameters first), matching the
    /// sequential parameter allocation of the ansatz builders.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid strategy parameters
    /// (e.g. non-positive beta shapes or a non-finite orthogonal gain).
    pub fn sample_params<R: Rng>(
        &self,
        shape: &LayerShape,
        mode: FanMode,
        rng: &mut R,
    ) -> Result<Vec<f64>, CoreError> {
        let n = shape.n_params();
        let (fan_in, fan_out) = shape.fans(mode);
        match self {
            InitStrategy::Random => {
                let d = Uniform::new(0.0, 2.0 * PI)?;
                Ok(sample_n(&d, rng, n))
            }
            InitStrategy::XavierNormal => {
                let d = Normal::from_variance(0.0, 2.0 / (fan_in + fan_out) as f64)?;
                Ok(sample_n(&d, rng, n))
            }
            InitStrategy::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
                let d = Uniform::symmetric(limit)?;
                Ok(sample_n(&d, rng, n))
            }
            InitStrategy::He => {
                let d = Normal::from_variance(0.0, 2.0 / fan_in as f64)?;
                Ok(sample_n(&d, rng, n))
            }
            InitStrategy::LeCun => {
                let d = Normal::from_variance(0.0, 1.0 / fan_in as f64)?;
                Ok(sample_n(&d, rng, n))
            }
            InitStrategy::Orthogonal { gain } => {
                if !gain.is_finite() {
                    return Err(CoreError::InvalidConfig(
                        "orthogonal gain must be finite".into(),
                    ));
                }
                Ok(sample_orthogonal(shape, *gain, rng))
            }
            InitStrategy::BetaInit { alpha, beta } => {
                let d = Beta::new(*alpha, *beta)?;
                Ok((0..n).map(|_| PI * (2.0 * d.sample(rng) - 1.0)).collect())
            }
            InitStrategy::Zero => Ok(vec![0.0; n]),
        }
    }
}

impl fmt::Display for InitStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitStrategy::Random => write!(f, "Random"),
            InitStrategy::XavierNormal => write!(f, "Xavier (normal)"),
            InitStrategy::XavierUniform => write!(f, "Xavier (uniform)"),
            InitStrategy::He => write!(f, "He"),
            InitStrategy::LeCun => write!(f, "LeCun"),
            InitStrategy::Orthogonal { gain } => write!(f, "Orthogonal (gain {gain})"),
            InitStrategy::BetaInit { alpha, beta } => write!(f, "BeInit({alpha}, {beta})"),
            InitStrategy::Zero => write!(f, "Zero"),
        }
    }
}

fn sample_n<R: Rng>(d: &impl Sampler, rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| d.sample(rng)).collect()
}

/// Draws the `layers × params_per_layer` parameter matrix with the
/// classical per-layer orthogonal discipline: classical orthogonal
/// initialization makes **each layer's square weight matrix** orthogonal,
/// so the PQC analogue fills the layer axis with rows of independent
/// Haar-random `(ppl × ppl)` orthogonal matrices (a fresh matrix every
/// `ppl` layers). Every row is a unit vector, so per-angle variance is
/// `1/params_per_layer` — the same scale as LeCun, which is why the two
/// behave similarly in the paper's Fig 5a.
fn sample_orthogonal<R: Rng>(shape: &LayerShape, gain: f64, rng: &mut R) -> Vec<f64> {
    let layers = shape.layers();
    let ppl = shape.params_per_layer();
    let gauss = Normal::standard();
    let mut out = Vec::with_capacity(layers * ppl);
    let mut rows_remaining = layers;
    while rows_remaining > 0 {
        let q = sample_haar_orthogonal(ppl, &gauss, rng);
        let take = rows_remaining.min(ppl);
        for r in 0..take {
            out.extend(q.row(r).iter().map(|x| gain * x));
        }
        rows_remaining -= take;
    }
    out
}

/// Haar-random `n × n` orthogonal matrix via sign-fixed QR of a
/// standard-Gaussian matrix (Mezzadri's construction).
fn sample_haar_orthogonal<R: Rng>(n: usize, gauss: &Normal, rng: &mut R) -> RMatrix {
    let a = RMatrix::from_fn(n, n, |_, _| gauss.sample(rng));
    qr_decompose_signfixed(&a).q
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_stats::{mean, variance};
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    fn shape(q: usize, ppl: usize, l: usize) -> LayerShape {
        LayerShape::new(q, ppl, l).unwrap()
    }

    fn draw(strategy: InitStrategy, shape: &LayerShape, mode: FanMode, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        strategy.sample_params(shape, mode, &mut rng).unwrap()
    }

    #[test]
    fn layer_shape_accessors_and_validation() {
        let s = shape(10, 20, 5);
        assert_eq!(s.n_qubits(), 10);
        assert_eq!(s.params_per_layer(), 20);
        assert_eq!(s.layers(), 5);
        assert_eq!(s.n_params(), 100);
        assert_eq!(s.fans(FanMode::Qubits), (10, 10));
        assert_eq!(s.fans(FanMode::ParamsPerLayer), (20, 20));
        assert!(LayerShape::new(0, 1, 1).is_err());
        assert!(LayerShape::new(1, 0, 1).is_err());
        assert!(LayerShape::new(1, 1, 0).is_err());
    }

    #[test]
    fn all_strategies_return_correct_length() {
        let s = shape(4, 8, 3);
        for strat in [
            InitStrategy::Random,
            InitStrategy::XavierNormal,
            InitStrategy::XavierUniform,
            InitStrategy::He,
            InitStrategy::LeCun,
            InitStrategy::Orthogonal { gain: 1.0 },
            InitStrategy::BetaInit { alpha: 2.0, beta: 2.0 },
            InitStrategy::Zero,
        ] {
            let v = draw(strat, &s, FanMode::Qubits, 1);
            assert_eq!(v.len(), 24, "{strat}");
            assert!(v.iter().all(|x| x.is_finite()), "{strat}");
        }
    }

    #[test]
    fn random_covers_zero_two_pi() {
        let s = shape(10, 100, 20);
        let v = draw(InitStrategy::Random, &s, FanMode::Qubits, 2);
        assert!(v.iter().all(|&x| (0.0..2.0 * PI).contains(&x)));
        // Mean near π, variance near (2π)²/12.
        assert!((mean(&v) - PI).abs() < 0.1);
        let nominal = InitStrategy::Random
            .nominal_variance(&s, FanMode::Qubits)
            .unwrap();
        assert!((variance(&v) - nominal).abs() / nominal < 0.1);
    }

    #[test]
    fn xavier_normal_variance_matches_formula() {
        let s = shape(10, 200, 20); // 4000 samples
        let v = draw(InitStrategy::XavierNormal, &s, FanMode::Qubits, 3);
        let nominal = 2.0 / 20.0;
        assert!((variance(&v) - nominal).abs() / nominal < 0.15);
        assert!(mean(&v).abs() < 0.02);
    }

    #[test]
    fn xavier_uniform_bounds_and_variance() {
        let s = shape(10, 200, 20);
        let v = draw(InitStrategy::XavierUniform, &s, FanMode::Qubits, 4);
        let limit = (6.0 / 20.0f64).sqrt();
        assert!(v.iter().all(|&x| x.abs() <= limit));
        let nominal = limit * limit / 3.0;
        assert!((variance(&v) - nominal).abs() / nominal < 0.15);
    }

    #[test]
    fn he_variance_is_twice_lecun() {
        let s = shape(8, 400, 10);
        let he = draw(InitStrategy::He, &s, FanMode::Qubits, 5);
        let lecun = draw(InitStrategy::LeCun, &s, FanMode::Qubits, 6);
        let ratio = variance(&he) / variance(&lecun);
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn xavier_normal_equals_lecun_at_equal_fans() {
        // With fan_in = fan_out = n, Var_xavier = 2/2n = 1/n = Var_lecun.
        let s = shape(6, 12, 4);
        let xv = InitStrategy::XavierNormal
            .nominal_variance(&s, FanMode::Qubits)
            .unwrap();
        let lc = InitStrategy::LeCun
            .nominal_variance(&s, FanMode::Qubits)
            .unwrap();
        assert!((xv - lc).abs() < 1e-15);
    }

    #[test]
    fn fan_mode_changes_scale() {
        let s = shape(10, 20, 5);
        let q = InitStrategy::He.nominal_variance(&s, FanMode::Qubits).unwrap();
        let p = InitStrategy::He
            .nominal_variance(&s, FanMode::ParamsPerLayer)
            .unwrap();
        assert!((q / p - 2.0).abs() < 1e-12); // 2/10 vs 2/20
    }

    #[test]
    fn tensor_shape_fan_mode_uses_layers_as_fan_out() {
        // Parameter tensor of shape (layers=100, ppl=10): fan_in = 10,
        // fan_out = 100 → Xavier var = 2/110, He var = 2/10 (fan_in only).
        let s = shape(10, 10, 100);
        assert_eq!(s.fans(FanMode::TensorShape), (10, 100));
        let xavier = InitStrategy::XavierNormal
            .nominal_variance(&s, FanMode::TensorShape)
            .unwrap();
        assert!((xavier - 2.0 / 110.0).abs() < 1e-15);
        let he = InitStrategy::He
            .nominal_variance(&s, FanMode::TensorShape)
            .unwrap();
        assert!((he - 0.2).abs() < 1e-15);
        // The Xavier margin the paper reports depends on exactly this gap.
        assert!(xavier < he / 5.0);
    }

    #[test]
    fn orthogonal_fills_layers_with_square_haar_blocks() {
        // layers=8, ppl=3 → two full 3×3 orthogonal blocks + 2 rows of a
        // third; every full block must be an orthogonal matrix.
        let s = shape(3, 3, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let v = InitStrategy::Orthogonal { gain: 1.0 }
            .sample_params(&s, FanMode::Qubits, &mut rng)
            .unwrap();
        assert_eq!(v.len(), 24);
        for block in 0..2 {
            let m = RMatrix::from_vec(3, 3, v[block * 9..(block + 1) * 9].to_vec());
            assert!(m.has_orthonormal_rows(1e-10), "block {block}");
            assert!(m.has_orthonormal_columns(1e-10), "block {block}");
        }
        // Partial last block: rows are still unit-norm and orthogonal.
        let tail = RMatrix::from_vec(2, 3, v[18..24].to_vec());
        assert!(tail.has_orthonormal_rows(1e-10));
    }

    #[test]
    fn orthogonal_wide_case_has_orthonormal_rows() {
        // layers < params_per_layer → the first rows of one Haar matrix.
        let s = shape(10, 20, 5);
        let mut rng = StdRng::seed_from_u64(8);
        let v = InitStrategy::Orthogonal { gain: 1.0 }
            .sample_params(&s, FanMode::Qubits, &mut rng)
            .unwrap();
        assert_eq!(v.len(), 100);
        let m = RMatrix::from_vec(5, 20, v);
        assert!(m.has_orthonormal_rows(1e-10));
    }

    #[test]
    fn orthogonal_nominal_variance_matches_empirical_mean_square() {
        let s = shape(6, 6, 60);
        let mut rng = StdRng::seed_from_u64(12);
        let v = InitStrategy::Orthogonal { gain: 1.0 }
            .sample_params(&s, FanMode::Qubits, &mut rng)
            .unwrap();
        let mean_sq = v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        let nominal = InitStrategy::Orthogonal { gain: 1.0 }
            .nominal_variance(&s, FanMode::Qubits)
            .unwrap();
        // Unit-norm rows make this exact, not just statistical.
        assert!((mean_sq - nominal).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_gain_scales_entries() {
        let s = shape(4, 8, 4);
        let base = draw(InitStrategy::Orthogonal { gain: 1.0 }, &s, FanMode::Qubits, 9);
        let scaled = draw(InitStrategy::Orthogonal { gain: 3.0 }, &s, FanMode::Qubits, 9);
        for (b, sc) in base.iter().zip(scaled.iter()) {
            assert!((sc - 3.0 * b).abs() < 1e-12);
        }
        assert!(InitStrategy::Orthogonal { gain: f64::NAN }
            .sample_params(&s, FanMode::Qubits, &mut StdRng::seed_from_u64(0))
            .is_err());
    }

    #[test]
    fn beta_init_range_and_symmetry() {
        let s = shape(10, 100, 10);
        let v = draw(
            InitStrategy::BetaInit { alpha: 2.0, beta: 2.0 },
            &s,
            FanMode::Qubits,
            10,
        );
        assert!(v.iter().all(|&x| (-PI..=PI).contains(&x)));
        assert!(mean(&v).abs() < 0.1);
        assert!(InitStrategy::BetaInit { alpha: -1.0, beta: 2.0 }
            .sample_params(&s, FanMode::Qubits, &mut StdRng::seed_from_u64(0))
            .is_err());
    }

    #[test]
    fn zero_strategy_is_all_zeros() {
        let s = shape(2, 4, 2);
        let v = draw(InitStrategy::Zero, &s, FanMode::Qubits, 11);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(
            InitStrategy::Zero.nominal_variance(&s, FanMode::Qubits),
            Some(0.0)
        );
    }

    #[test]
    fn reproducible_with_seed() {
        let s = shape(5, 10, 4);
        for strat in InitStrategy::PAPER_SET {
            let a = draw(strat, &s, FanMode::Qubits, 42);
            let b = draw(strat, &s, FanMode::Qubits, 42);
            assert_eq!(a, b, "{strat}");
        }
    }

    #[test]
    fn paper_set_contents() {
        assert_eq!(InitStrategy::PAPER_SET.len(), 6);
        assert_eq!(InitStrategy::PAPER_SET[0].name(), "random");
        let names: Vec<&str> = InitStrategy::PAPER_SET.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"xavier_normal"));
        assert!(names.contains(&"orthogonal"));
    }

    #[test]
    fn display_and_names() {
        assert_eq!(InitStrategy::He.to_string(), "He");
        assert_eq!(InitStrategy::XavierUniform.name(), "xavier_uniform");
        assert!(InitStrategy::Orthogonal { gain: 1.0 }
            .to_string()
            .contains("Orthogonal"));
        assert!(InitStrategy::BetaInit { alpha: 1.0, beta: 2.0 }
            .to_string()
            .contains("BeInit"));
    }

    #[test]
    fn nominal_variance_of_orthogonal_scales_with_gain_and_ppl() {
        let s = shape(4, 8, 2);
        let v = InitStrategy::Orthogonal { gain: 2.0 }
            .nominal_variance(&s, FanMode::Qubits)
            .unwrap();
        assert!((v - 4.0 / 8.0).abs() < 1e-15);
    }
}
