//! Quantum natural gradient descent (Stokes et al. 2020) — the
//! barren-plateau mitigation the paper discusses in related work §II-b,
//! implemented here as a comparison baseline for the initialization
//! strategies.
//!
//! Each step solves `(G(θ) + λI) δ = ∇C(θ)` with the Fubini–Study metric
//! `G` and updates `θ ← θ − η δ`: steepest descent in *state* space. The
//! Tikhonov term `λ` keeps the solve well-posed on plateaus where `G`
//! degenerates (which is exactly where QNG's cost is highest — the paper's
//! §II-b criticism).
//!
//! # Examples
//!
//! ```
//! use plateau_core::{ansatz::training_ansatz, cost::CostKind};
//! use plateau_core::qng::{train_qng, QngConfig};
//! use plateau_core::init::{FanMode, InitStrategy};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let a = training_ansatz(3, 2)?;
//! let mut rng = StdRng::seed_from_u64(4);
//! let theta0 = InitStrategy::XavierNormal.sample_params(&a.shape, FanMode::Qubits, &mut rng)?;
//! let hist = train_qng(
//!     &a.circuit,
//!     &CostKind::Global.observable(3),
//!     theta0,
//!     &QngConfig::default(),
//!     25,
//! )?;
//! assert!(hist.final_loss() < hist.initial_loss());
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use crate::train::TrainingHistory;
use plateau_grad::{expectation, metric_tensor, Adjoint, GradientEngine};
use plateau_linalg::solve;
use plateau_sim::{Circuit, Observable};

/// Configuration of the QNG optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QngConfig {
    /// Step size η (the paper's experiments use 0.1 for its optimizers).
    pub learning_rate: f64,
    /// Tikhonov regularization λ added to the metric diagonal.
    pub regularization: f64,
}

impl Default for QngConfig {
    fn default() -> Self {
        QngConfig {
            learning_rate: 0.1,
            regularization: 1e-4,
        }
    }
}

impl QngConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(CoreError::InvalidConfig("qng learning rate must be positive".into()));
        }
        if !(self.regularization.is_finite() && self.regularization >= 0.0) {
            return Err(CoreError::InvalidConfig(
                "qng regularization must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Trains with quantum natural gradient descent for `iterations` steps.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for bad configuration, and
/// propagates simulator errors; a singular metric with `regularization = 0`
/// surfaces as [`CoreError::InvalidConfig`].
pub fn train_qng(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    config: &QngConfig,
    iterations: usize,
) -> Result<TrainingHistory, CoreError> {
    config.validate()?;
    let mut params = initial_params;
    circuit.check_params(&params)?;

    let mut losses = Vec::with_capacity(iterations + 1);
    let mut grad_norms = Vec::with_capacity(iterations);
    losses.push(expectation(circuit, &params, observable)?);

    for _ in 0..iterations {
        let grad = Adjoint.gradient(circuit, &params, observable)?;
        grad_norms.push(grad.iter().map(|g| g * g).sum::<f64>().sqrt());

        let mut g = metric_tensor(circuit, &params)?;
        for i in 0..params.len() {
            g[(i, i)] += config.regularization;
        }
        let delta = solve(&g, &grad).map_err(|e| {
            CoreError::InvalidConfig(format!("metric solve failed: {e} (increase regularization)"))
        })?;
        for (p, d) in params.iter_mut().zip(delta.iter()) {
            *p -= config.learning_rate * d;
        }
        losses.push(expectation(circuit, &params, observable)?);
    }

    TrainingHistory::new(losses, grad_norms, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::training_ansatz;
    use crate::cost::CostKind;
    use crate::init::{FanMode, InitStrategy};
    use crate::optim::GradientDescent;
    use crate::train::train;
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    #[test]
    fn qng_trains_identity_task() {
        let a = training_ansatz(4, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let theta0 = InitStrategy::XavierNormal
            .sample_params(&a.shape, FanMode::Qubits, &mut rng)
            .unwrap();
        let obs = CostKind::Global.observable(4);
        let hist = train_qng(&a.circuit, &obs, theta0, &QngConfig::default(), 30).unwrap();
        assert!(hist.final_loss() < 0.1, "final {}", hist.final_loss());
        assert_eq!(hist.losses.len(), 31);
    }

    #[test]
    fn qng_converges_faster_than_vanilla_gd_per_iteration() {
        // On the identity task from a Xavier start at the same step size,
        // the metric-preconditioned step makes at least as much progress.
        let a = training_ansatz(3, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let theta0 = InitStrategy::XavierNormal
            .sample_params(&a.shape, FanMode::Qubits, &mut rng)
            .unwrap();
        let obs = CostKind::Global.observable(3);
        let qng = train_qng(&a.circuit, &obs, theta0.clone(), &QngConfig::default(), 15).unwrap();
        let mut gd = GradientDescent::new(0.1).unwrap();
        let vanilla = train(&a.circuit, &obs, theta0, &mut gd, 15).unwrap();
        assert!(
            qng.final_loss() <= vanilla.final_loss() * 1.05,
            "qng {} vs gd {}",
            qng.final_loss(),
            vanilla.final_loss()
        );
    }

    #[test]
    fn config_validation() {
        let a = training_ansatz(2, 1).unwrap();
        let obs = CostKind::Global.observable(2);
        let theta = vec![0.1; a.circuit.n_params()];
        let bad_lr = QngConfig { learning_rate: 0.0, ..QngConfig::default() };
        assert!(train_qng(&a.circuit, &obs, theta.clone(), &bad_lr, 1).is_err());
        let bad_reg = QngConfig { regularization: -1.0, ..QngConfig::default() };
        assert!(train_qng(&a.circuit, &obs, theta, &bad_reg, 1).is_err());
    }

    #[test]
    fn wrong_param_length_is_error() {
        let a = training_ansatz(2, 1).unwrap();
        let obs = CostKind::Global.observable(2);
        assert!(train_qng(&a.circuit, &obs, vec![0.0], &QngConfig::default(), 1).is_err());
    }
}
