//! Analytic reference values for the barren-plateau experiments.
//!
//! Two regimes bracket the paper's phenomenology:
//!
//! - **2-design regime** (deep, wide-angle circuits — the random
//!   baseline): McClean et al. showed the gradient variance of a cost
//!   whose circuit approximates a unitary 2-design on both sides of the
//!   differentiated gate scales as `Var ∝ 2^{−2n}`, i.e. a log-variance
//!   slope of `−2·ln 2 ≈ −1.386` per qubit. Our measured random slope
//!   (≈ −1.34 at depth 50) should approach this from above.
//! - **Near-identity regime** (bounded initializers): with all angles
//!   i.i.d. `N(0, σ²)` and `σ²·L` small, the circuit is a perturbation of
//!   the identity; the global cost responds quadratically per angle and
//!   the last-parameter gradient is `≈ θ_last/2` for a flip-generating
//!   gate (RX/RY) and `0` for a phase gate (RZ, which commutes with the
//!   measurement basis at leading order). Drawing uniformly from
//!   {RX, RY, RZ}, `Var[∂C/∂θ_last] ≈ (2/3)·σ²/4 = σ²/6`, independent of
//!   qubit count — which is exactly why the bounded initializers' decay
//!   curves flatten.
//!
//! These are *reference asymptotics*, not substitutes for measurement;
//! the `ablation_theory` bench prints measured-vs-predicted side by side.

/// Per-qubit log-variance decay rate of an ideal 2-design ensemble:
/// `−2·ln 2` (variance loses two bits per added qubit).
pub fn two_design_decay_rate() -> f64 {
    -2.0 * std::f64::consts::LN_2
}

/// Near-identity prediction for `Var[∂C/∂θ_last]` of the variance ansatz
/// (uniform gate draw from {RX, RY, RZ}) under i.i.d. angles of variance
/// `σ²`, at `layers` rotations per qubit.
///
/// Derivation sketch: to first order the CZ chains act as identity, each
/// qubit accumulates a complex flip amplitude `A_q` with every RX
/// contributing `−iθ/2` and every RY `+θ/2`, and
/// `C ≈ Σ_q |A_q|²`. The last parameter's gradient is the same-axis
/// amplitude sum on its qubit, so (with the last gate flip-type with
/// probability 2/3 and each of the other `L−1` gates matching its axis
/// with probability 1/3):
///
/// ```text
/// Var ≈ (2/3) · (σ²/4) · (1 + (L−1)/3)
/// ```
///
/// Qubit-count independent — the analytic reason the bounded
/// initializers' decay curves flatten.
pub fn near_identity_gradient_variance(sigma_sq: f64, layers: usize) -> f64 {
    (2.0 / 3.0) * (sigma_sq / 4.0) * (1.0 + (layers.saturating_sub(1)) as f64 / 3.0)
}

/// Whether a measured decay rate is consistent with the 2-design
/// asymptote within `tolerance` (absolute, on the per-qubit rate).
pub fn is_two_design_rate(measured_rate: f64, tolerance: f64) -> bool {
    (measured_rate - two_design_decay_rate()).abs() <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostKind;
    use crate::init::{FanMode, InitStrategy};
    use crate::variance::{variance_scan, VarianceConfig};

    #[test]
    fn two_design_rate_value() {
        assert!((two_design_decay_rate() + 1.3862943611198906).abs() < 1e-12);
        assert!(is_two_design_rate(-1.35, 0.1));
        assert!(!is_two_design_rate(-0.5, 0.1));
    }

    #[test]
    fn deep_random_circuits_approach_the_two_design_rate() {
        let cfg = VarianceConfig {
            qubit_counts: vec![2, 4, 6],
            layers: 40,
            n_circuits: 80,
            ..VarianceConfig::default()
        };
        let scan = variance_scan(&cfg, &[InitStrategy::Random]).expect("scan");
        let rate = scan.curves[0].decay_fit().expect("fit").rate;
        assert!(
            is_two_design_rate(rate, 0.35),
            "measured {rate} vs prediction {}",
            two_design_decay_rate()
        );
    }

    #[test]
    fn near_identity_prediction_matches_small_angle_ensembles() {
        // BetaInit with large α = β gives controllably tiny angle
        // variance: Var[θ] = π² αβ / ((α+β)²(α+β+1)). Two settings with a
        // known σ² ratio (≈ 2) probe both the absolute level and the linearity
        // of the perturbative prediction.
        let layers = 2;
        let cfg = VarianceConfig {
            qubit_counts: vec![4, 6],
            layers,
            n_circuits: 200,
            cost: CostKind::Global,
            fan_mode: FanMode::Qubits,
            ..VarianceConfig::default()
        };
        let narrow = InitStrategy::BetaInit { alpha: 200.0, beta: 200.0 };
        let wide = InitStrategy::BetaInit { alpha: 100.0, beta: 100.0 };
        let sigma_sq = |s: &InitStrategy| {
            s.nominal_variance(&crate::init::LayerShape::new(4, 4, layers).unwrap(), FanMode::Qubits)
                .expect("beta variance is analytic")
        };
        let scan = variance_scan(&cfg, &[narrow, wide]).expect("scan");

        for strategy in [narrow, wide] {
            let s2 = sigma_sq(&strategy);
            let predicted = near_identity_gradient_variance(s2, layers);
            for point in &scan.curve_of(strategy).expect("curve").points {
                let ratio = point.variance / predicted;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "{strategy} at q={}: measured {:.3e} vs predicted {predicted:.3e} (ratio {ratio:.2})",
                    point.n_qubits,
                    point.variance
                );
            }
        }

        // Linearity in σ²: the two settings' variance ratio tracks the
        // analytic σ² ratio.
        let expected_ratio = sigma_sq(&wide) / sigma_sq(&narrow);
        let measured_ratio = scan.curve_of(wide).expect("wide").points[0].variance
            / scan.curve_of(narrow).expect("narrow").points[0].variance;
        assert!(
            (measured_ratio / expected_ratio - 1.0).abs() < 0.5,
            "variance should be linear in σ²: measured ratio {measured_ratio:.2} vs {expected_ratio:.2}"
        );
    }
}
