//! Error type for the core experiment layer.

use plateau_sim::SimError;
use plateau_stats::{FitError, InvalidDistributionError};
use std::error::Error;
use std::fmt;

/// Errors raised by ansatz construction, initialization, training, and the
/// analysis harnesses.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A simulator-level failure (bad qubit index, parameter mismatch, …).
    Sim(SimError),
    /// A distribution was constructed with invalid parameters.
    Distribution(InvalidDistributionError),
    /// A regression problem was ill-posed (e.g. non-positive variances).
    Fit(FitError),
    /// An experiment or optimizer configuration was invalid.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Distribution(e) => write!(f, "distribution error: {e}"),
            CoreError::Fit(e) => write!(f, "fit error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Distribution(e) => Some(e),
            CoreError::Fit(e) => Some(e),
            CoreError::InvalidConfig(_) => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<InvalidDistributionError> for CoreError {
    fn from(e: InvalidDistributionError) -> Self {
        CoreError::Distribution(e)
    }
}

impl From<FitError> for CoreError {
    fn from(e: FitError) -> Self {
        CoreError::Fit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let sim: CoreError = SimError::DuplicateQubits { qubit: 1 }.into();
        assert!(sim.to_string().contains("simulation"));
        assert!(sim.source().is_some());

        let cfg = CoreError::InvalidConfig("bad".into());
        assert!(cfg.to_string().contains("bad"));
        assert!(cfg.source().is_none());

        let fit: CoreError = FitError::TooFewPoints.into();
        assert!(fit.to_string().contains("fit"));

        let dist: CoreError = plateau_stats::Uniform::new(1.0, 0.0).unwrap_err().into();
        assert!(dist.to_string().contains("distribution"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>(_e: E) {}
        check(CoreError::InvalidConfig("x".into()));
    }
}
