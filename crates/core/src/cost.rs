//! Cost-function selection: global (the paper's Eq. 4) vs local (the
//! Cerezo et al. alternative discussed in §II-d).

use plateau_sim::Observable;
use std::fmt;

/// Which cost operator an experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostKind {
    /// `C = 1 − p(|0…0⟩)` — the paper's objective (Eq. 4). Global costs
    /// show barren plateaus at any depth.
    #[default]
    Global,
    /// `C = 1 − (1/n) Σ_j p(qubit j = 0)` — polynomially vanishing
    /// gradients up to logarithmic depth.
    Local,
}

impl CostKind {
    /// The observable realizing this cost over `n_qubits`.
    ///
    /// # Examples
    ///
    /// ```
    /// use plateau_core::cost::CostKind;
    /// use plateau_sim::State;
    ///
    /// let obs = CostKind::Global.observable(2);
    /// assert!(obs.expectation(&State::zero(2))?.abs() < 1e-12);
    /// # Ok::<(), plateau_sim::SimError>(())
    /// ```
    pub fn observable(self, n_qubits: usize) -> Observable {
        match self {
            CostKind::Global => Observable::global_cost(n_qubits),
            CostKind::Local => Observable::local_cost(n_qubits),
        }
    }

    /// Machine-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::Global => "global",
            CostKind::Local => "local",
        }
    }
}

impl fmt::Display for CostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plateau_sim::State;

    #[test]
    fn kinds_map_to_observables() {
        let g = CostKind::Global.observable(3);
        let l = CostKind::Local.observable(3);
        assert_eq!(g, Observable::global_cost(3));
        assert_eq!(l, Observable::local_cost(3));
        assert_eq!(CostKind::default(), CostKind::Global);
    }

    #[test]
    fn both_costs_vanish_on_target_state() {
        let zero = State::zero(4);
        for kind in [CostKind::Global, CostKind::Local] {
            assert!(kind.observable(4).expectation(&zero).unwrap().abs() < 1e-12);
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(CostKind::Global.name(), "global");
        assert_eq!(CostKind::Local.to_string(), "local");
    }
}
