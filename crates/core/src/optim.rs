//! First-order optimizers (the paper trains with Gradient Descent and Adam
//! at step size 0.1; Momentum/RMSProp/AdaGrad are provided for the
//! optimizer ablation).
//!
//! All optimizers mutate a parameter vector in place given a gradient and
//! keep whatever running state they need internally, so a training loop is
//! just `optimizer.step(&mut params, &grad)` per iteration.
//!
//! # Examples
//!
//! Minimize the 1-D quadratic `f(x) = (x − 3)²` with Adam:
//!
//! ```
//! use plateau_core::optim::{Adam, Optimizer};
//!
//! let mut opt = Adam::new(0.1)?;
//! let mut x = [0.0f64];
//! for _ in 0..400 {
//!     let grad = [2.0 * (x[0] - 3.0)];
//!     opt.step(&mut x, &grad)?;
//! }
//! assert!((x[0] - 3.0).abs() < 1e-2);
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use std::fmt;

/// A learning-rate schedule evaluated per iteration (0-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// A constant rate.
    Constant(f64),
    /// `rate · decay^t` exponential decay.
    Exponential {
        /// Initial rate.
        rate: f64,
        /// Per-iteration multiplicative decay in `(0, 1]`.
        decay: f64,
    },
    /// Piecewise: `rate / (1 + t / step)` — halves every `step` iterations.
    InverseTime {
        /// Initial rate.
        rate: f64,
        /// Iterations per halving.
        step: usize,
    },
}

impl Schedule {
    /// The learning rate at iteration `t`.
    pub fn at(&self, t: usize) -> f64 {
        match self {
            Schedule::Constant(r) => *r,
            Schedule::Exponential { rate, decay } => rate * decay.powi(t as i32),
            Schedule::InverseTime { rate, step } => rate / (1.0 + t as f64 / *step as f64),
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        let ok = match self {
            Schedule::Constant(r) => r.is_finite() && *r > 0.0,
            Schedule::Exponential { rate, decay } => {
                rate.is_finite() && *rate > 0.0 && *decay > 0.0 && *decay <= 1.0
            }
            Schedule::InverseTime { rate, step } => rate.is_finite() && *rate > 0.0 && *step > 0,
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::InvalidConfig("invalid learning-rate schedule".into()))
        }
    }
}

/// A first-order optimizer over a flat parameter vector.
pub trait Optimizer {
    /// Applies one update in place.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `params` and `grad` have
    /// different lengths.
    fn step(&mut self, params: &mut [f64], grad: &[f64]) -> Result<(), CoreError>;

    /// Resets internal state (moment estimates, iteration counters).
    fn reset(&mut self);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

fn check_lengths(params: &[f64], grad: &[f64]) -> Result<(), CoreError> {
    if params.len() != grad.len() {
        return Err(CoreError::InvalidConfig(format!(
            "parameter/gradient length mismatch: {} vs {}",
            params.len(),
            grad.len()
        )));
    }
    Ok(())
}

/// Vanilla gradient descent: `θ ← θ − η_t ∇C`.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientDescent {
    schedule: Schedule,
    t: usize,
}

impl GradientDescent {
    /// Constant-rate gradient descent (the paper uses `lr = 0.1`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive rate.
    pub fn new(lr: f64) -> Result<GradientDescent, CoreError> {
        GradientDescent::with_schedule(Schedule::Constant(lr))
    }

    /// Gradient descent with an arbitrary schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid schedule.
    pub fn with_schedule(schedule: Schedule) -> Result<GradientDescent, CoreError> {
        schedule.validate()?;
        Ok(GradientDescent { schedule, t: 0 })
    }
}

impl Optimizer for GradientDescent {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) -> Result<(), CoreError> {
        check_lengths(params, grad)?;
        let lr = self.schedule.at(self.t);
        for (p, g) in params.iter_mut().zip(grad.iter()) {
            *p -= lr * g;
        }
        self.t += 1;
        Ok(())
    }

    fn reset(&mut self) {
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "gradient_descent"
    }
}

/// Gradient descent with classical momentum.
#[derive(Debug, Clone, PartialEq)]
pub struct Momentum {
    schedule: Schedule,
    beta: f64,
    velocity: Vec<f64>,
    t: usize,
}

impl Momentum {
    /// Creates momentum GD with rate `lr` and momentum factor `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive rate or
    /// `beta ∉ [0, 1)`.
    pub fn new(lr: f64, beta: f64) -> Result<Momentum, CoreError> {
        let schedule = Schedule::Constant(lr);
        schedule.validate()?;
        if !(0.0..1.0).contains(&beta) {
            return Err(CoreError::InvalidConfig("momentum beta must be in [0, 1)".into()));
        }
        Ok(Momentum {
            schedule,
            beta,
            velocity: Vec::new(),
            t: 0,
        })
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) -> Result<(), CoreError> {
        check_lengths(params, grad)?;
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        let lr = self.schedule.at(self.t);
        for ((p, g), v) in params.iter_mut().zip(grad.iter()).zip(self.velocity.iter_mut()) {
            *v = self.beta * *v + g;
            *p -= lr * *v;
        }
        self.t += 1;
        Ok(())
    }

    fn reset(&mut self) {
        self.velocity.clear();
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "momentum"
    }
}

/// Adam (Kingma & Ba 2015) with bias correction — the paper's second
/// optimizer, also at step size 0.1.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    schedule: Schedule,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
}

impl Adam {
    /// Adam with the standard moment decays `β₁ = 0.9`, `β₂ = 0.999`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive rate.
    pub fn new(lr: f64) -> Result<Adam, CoreError> {
        Adam::with_config(Schedule::Constant(lr), 0.9, 0.999, 1e-8)
    }

    /// Fully configurable Adam.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid decays, epsilon, or
    /// schedule.
    pub fn with_config(
        schedule: Schedule,
        beta1: f64,
        beta2: f64,
        eps: f64,
    ) -> Result<Adam, CoreError> {
        schedule.validate()?;
        if !(0.0..1.0).contains(&beta1) || !(0.0..1.0).contains(&beta2) {
            return Err(CoreError::InvalidConfig("adam betas must be in [0, 1)".into()));
        }
        if !(eps.is_finite() && eps > 0.0) {
            return Err(CoreError::InvalidConfig("adam eps must be positive".into()));
        }
        Ok(Adam {
            schedule,
            beta1,
            beta2,
            eps,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) -> Result<(), CoreError> {
        check_lengths(params, grad)?;
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        let lr = self.schedule.at(self.t);
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// RMSProp (Tieleman & Hinton).
#[derive(Debug, Clone, PartialEq)]
pub struct RmsProp {
    schedule: Schedule,
    rho: f64,
    eps: f64,
    sq: Vec<f64>,
    t: usize,
}

impl RmsProp {
    /// RMSProp with the standard decay `ρ = 0.9`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive rate.
    pub fn new(lr: f64) -> Result<RmsProp, CoreError> {
        let schedule = Schedule::Constant(lr);
        schedule.validate()?;
        Ok(RmsProp {
            schedule,
            rho: 0.9,
            eps: 1e-8,
            sq: Vec::new(),
            t: 0,
        })
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) -> Result<(), CoreError> {
        check_lengths(params, grad)?;
        if self.sq.len() != params.len() {
            self.sq = vec![0.0; params.len()];
        }
        let lr = self.schedule.at(self.t);
        for i in 0..params.len() {
            self.sq[i] = self.rho * self.sq[i] + (1.0 - self.rho) * grad[i] * grad[i];
            params[i] -= lr * grad[i] / (self.sq[i].sqrt() + self.eps);
        }
        self.t += 1;
        Ok(())
    }

    fn reset(&mut self) {
        self.sq.clear();
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }
}

/// AdaGrad (Duchi et al. 2011).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaGrad {
    schedule: Schedule,
    eps: f64,
    accum: Vec<f64>,
    t: usize,
}

impl AdaGrad {
    /// AdaGrad at rate `lr`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive rate.
    pub fn new(lr: f64) -> Result<AdaGrad, CoreError> {
        let schedule = Schedule::Constant(lr);
        schedule.validate()?;
        Ok(AdaGrad {
            schedule,
            eps: 1e-8,
            accum: Vec::new(),
            t: 0,
        })
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) -> Result<(), CoreError> {
        check_lengths(params, grad)?;
        if self.accum.len() != params.len() {
            self.accum = vec![0.0; params.len()];
        }
        let lr = self.schedule.at(self.t);
        for i in 0..params.len() {
            self.accum[i] += grad[i] * grad[i];
            params[i] -= lr * grad[i] / (self.accum[i].sqrt() + self.eps);
        }
        self.t += 1;
        Ok(())
    }

    fn reset(&mut self) {
        self.accum.clear();
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::Constant(r) => write!(f, "constant({r})"),
            Schedule::Exponential { rate, decay } => write!(f, "exp({rate}, {decay})"),
            Schedule::InverseTime { rate, step } => write!(f, "inv_time({rate}, {step})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl f(x) = Σ (x_i − c_i)², gradient 2(x − c).
    fn quad_grad(x: &[f64], c: &[f64]) -> Vec<f64> {
        x.iter().zip(c.iter()).map(|(xi, ci)| 2.0 * (xi - ci)).collect()
    }

    fn run<O: Optimizer>(mut opt: O, iters: usize) -> Vec<f64> {
        let target = [3.0, -1.0, 0.5];
        let mut x = vec![0.0; 3];
        for _ in 0..iters {
            let g = quad_grad(&x, &target);
            opt.step(&mut x, &g).unwrap();
        }
        x
    }

    fn assert_near_target(x: &[f64], tol: f64) {
        let target = [3.0, -1.0, 0.5];
        for (xi, ti) in x.iter().zip(target.iter()) {
            assert!((xi - ti).abs() < tol, "{xi} vs {ti}");
        }
    }

    #[test]
    fn gradient_descent_converges_on_quadratic() {
        assert_near_target(&run(GradientDescent::new(0.1).unwrap(), 100), 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        assert_near_target(&run(Momentum::new(0.05, 0.9).unwrap(), 200), 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert_near_target(&run(Adam::new(0.1).unwrap(), 500), 1e-3);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        assert_near_target(&run(RmsProp::new(0.05).unwrap(), 800), 1e-2);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        assert_near_target(&run(AdaGrad::new(1.0).unwrap(), 800), 1e-2);
    }

    #[test]
    fn schedules_evaluate() {
        assert_eq!(Schedule::Constant(0.1).at(99), 0.1);
        let e = Schedule::Exponential { rate: 1.0, decay: 0.5 };
        assert_eq!(e.at(0), 1.0);
        assert_eq!(e.at(2), 0.25);
        let it = Schedule::InverseTime { rate: 1.0, step: 10 };
        assert_eq!(it.at(0), 1.0);
        assert_eq!(it.at(10), 0.5);
        assert!(!e.to_string().is_empty());
        assert!(!it.to_string().is_empty());
        assert!(!Schedule::Constant(0.1).to_string().is_empty());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(GradientDescent::new(0.0).is_err());
        assert!(GradientDescent::new(-1.0).is_err());
        assert!(GradientDescent::new(f64::NAN).is_err());
        assert!(Momentum::new(0.1, 1.0).is_err());
        assert!(Adam::with_config(Schedule::Constant(0.1), 1.0, 0.999, 1e-8).is_err());
        assert!(Adam::with_config(Schedule::Constant(0.1), 0.9, 0.999, 0.0).is_err());
        assert!(GradientDescent::with_schedule(Schedule::Exponential { rate: 1.0, decay: 1.5 })
            .is_err());
        assert!(GradientDescent::with_schedule(Schedule::InverseTime { rate: 1.0, step: 0 })
            .is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut gd = GradientDescent::new(0.1).unwrap();
        let mut x = vec![0.0; 2];
        assert!(gd.step(&mut x, &[1.0]).is_err());
    }

    #[test]
    fn reset_restores_initial_behavior() {
        let mut adam = Adam::new(0.1).unwrap();
        let mut x1 = vec![0.0; 1];
        adam.step(&mut x1, &[1.0]).unwrap();
        adam.step(&mut x1, &[1.0]).unwrap();
        adam.reset();
        let mut x2 = vec![0.0; 1];
        adam.step(&mut x2, &[1.0]).unwrap();
        // After reset, the first step from the same point must match a
        // freshly constructed optimizer's first step.
        let mut fresh = Adam::new(0.1).unwrap();
        let mut x3 = vec![0.0; 1];
        fresh.step(&mut x3, &[1.0]).unwrap();
        assert!((x2[0] - x3[0]).abs() < 1e-15);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, |Δθ| of the very first Adam step ≈ lr.
        let mut adam = Adam::new(0.1).unwrap();
        let mut x = vec![0.0; 1];
        adam.step(&mut x, &[0.42]).unwrap();
        assert!((x[0].abs() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn names() {
        assert_eq!(GradientDescent::new(0.1).unwrap().name(), "gradient_descent");
        assert_eq!(Adam::new(0.1).unwrap().name(), "adam");
        assert_eq!(Momentum::new(0.1, 0.5).unwrap().name(), "momentum");
        assert_eq!(RmsProp::new(0.1).unwrap().name(), "rmsprop");
        assert_eq!(AdaGrad::new(0.1).unwrap().name(), "adagrad");
    }

    #[test]
    fn decaying_schedule_slows_gd() {
        let fixed = run(GradientDescent::new(0.01).unwrap(), 50);
        let decayed = run(
            GradientDescent::with_schedule(Schedule::Exponential { rate: 0.01, decay: 0.9 })
                .unwrap(),
            50,
        );
        // Decayed schedule moves less far from the origin toward the target.
        let d_fixed: f64 = fixed.iter().map(|x| x * x).sum();
        let d_dec: f64 = decayed.iter().map(|x| x * x).sum();
        assert!(d_dec < d_fixed);
    }
}
