//! Circuit-ensemble analysis: entanglement and expressibility.
//!
//! *Why this matters to the paper*: barren plateaus arise when the circuit
//! ensemble approaches a unitary 2-design (Holmes et al.: expressibility
//! upper-bounds gradient variance). The initialization strategies work
//! precisely by *restricting* the explored ensemble — smaller angles mean
//! less entanglement and lower expressibility at initialization. This
//! module quantifies both effects:
//!
//! - [`average_entanglement`]: mean Meyer–Wallach `Q` of the state the
//!   initialized circuit prepares (Sim, Johnson & Aspuru-Guzik 2019 use
//!   the same measure for ansatz characterization).
//! - [`expressibility_kl`]: KL divergence between the ensemble's
//!   state-fidelity distribution and the Haar distribution
//!   `P(F) = (d−1)(1−F)^{d−2}`; **lower = more expressive** (closer to
//!   Haar), higher = more restricted.
//!
//! # Examples
//!
//! ```
//! use plateau_core::analysis::average_entanglement;
//! use plateau_core::ansatz::training_ansatz;
//! use plateau_core::init::{FanMode, InitStrategy};
//!
//! let a = training_ansatz(4, 3)?;
//! let random = average_entanglement(&a, InitStrategy::Random, FanMode::Qubits, 20, 7)?;
//! let xavier = average_entanglement(&a, InitStrategy::XavierNormal, FanMode::Qubits, 20, 7)?;
//! // Random angles entangle heavily; Xavier keeps the state near |0…0⟩.
//! assert!(random > xavier);
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::ansatz::Ansatz;
use crate::error::CoreError;
use crate::init::{FanMode, InitStrategy};
use plateau_sim::meyer_wallach;
use plateau_rng::rngs::StdRng;
use plateau_rng::SeedableRng;

/// Mean Meyer–Wallach global entanglement `Q` of the states prepared by
/// the ansatz under `samples` independent parameter draws from `strategy`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for `samples == 0` and propagates
/// sampling/simulation errors.
pub fn average_entanglement(
    ansatz: &Ansatz,
    strategy: InitStrategy,
    fan_mode: FanMode,
    samples: usize,
    seed: u64,
) -> Result<f64, CoreError> {
    if samples == 0 {
        return Err(CoreError::InvalidConfig("samples must be nonzero".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..samples {
        let theta = strategy.sample_params(&ansatz.shape, fan_mode, &mut rng)?;
        let state = ansatz.circuit.run(&theta)?;
        total += meyer_wallach(&state)?;
    }
    Ok(total / samples as f64)
}

/// Expressibility as the KL divergence `D(P_circuit ‖ P_Haar)` of the
/// pairwise state-fidelity distribution, estimated from `pairs`
/// independent parameter-pair draws and a `bins`-bin histogram.
///
/// Zero means the ensemble is indistinguishable from Haar-random states
/// (maximal expressibility — and maximal plateau risk); large values mean
/// a tightly concentrated, trainable ensemble.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for degenerate sampling settings
/// and propagates sampling/simulation errors.
pub fn expressibility_kl(
    ansatz: &Ansatz,
    strategy: InitStrategy,
    fan_mode: FanMode,
    pairs: usize,
    bins: usize,
    seed: u64,
) -> Result<f64, CoreError> {
    if pairs == 0 || bins < 2 {
        return Err(CoreError::InvalidConfig(
            "expressibility needs pairs ≥ 1 and bins ≥ 2".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; bins];
    for _ in 0..pairs {
        let t1 = strategy.sample_params(&ansatz.shape, fan_mode, &mut rng)?;
        let t2 = strategy.sample_params(&ansatz.shape, fan_mode, &mut rng)?;
        let s1 = ansatz.circuit.run(&t1)?;
        let s2 = ansatz.circuit.run(&t2)?;
        let f = s1.fidelity(&s2)?.clamp(0.0, 1.0);
        let bin = ((f * bins as f64) as usize).min(bins - 1);
        counts[bin] += 1;
    }

    // Haar bin masses from the CDF 1 − (1−F)^{d−1}.
    let d = (1usize << ansatz.shape.n_qubits()) as f64;
    let haar_cdf = |f: f64| 1.0 - (1.0 - f).powf(d - 1.0);
    let mut kl = 0.0;
    for (k, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let p = c as f64 / pairs as f64;
        let lo = k as f64 / bins as f64;
        let hi = (k + 1) as f64 / bins as f64;
        let q = (haar_cdf(hi) - haar_cdf(lo)).max(1e-300);
        kl += p * (p / q).ln();
    }
    Ok(kl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::training_ansatz;

    #[test]
    fn random_init_is_more_entangling_than_bounded() {
        let a = training_ansatz(4, 4).unwrap();
        let random =
            average_entanglement(&a, InitStrategy::Random, FanMode::Qubits, 15, 1).unwrap();
        let xavier =
            average_entanglement(&a, InitStrategy::XavierNormal, FanMode::TensorShape, 15, 1)
                .unwrap();
        assert!(
            random > 1.5 * xavier,
            "random Q {random:.3} should dwarf xavier Q {xavier:.3}"
        );
        assert!((0.0..=1.0).contains(&random));
        assert!((0.0..=1.0).contains(&xavier));
    }

    #[test]
    fn zero_init_has_zero_entanglement() {
        let a = training_ansatz(3, 3).unwrap();
        let q = average_entanglement(&a, InitStrategy::Zero, FanMode::Qubits, 3, 2).unwrap();
        assert!(q.abs() < 1e-10);
    }

    #[test]
    fn deep_random_circuits_approach_haar_expressibility() {
        // Deep + random ≈ Haar → small KL; bounded init → large KL
        // (Holmes et al.: less expressive ensembles escape the plateau).
        let a = training_ansatz(4, 3).unwrap();
        let kl_random =
            expressibility_kl(&a, InitStrategy::Random, FanMode::Qubits, 400, 16, 3).unwrap();
        let kl_xavier =
            expressibility_kl(&a, InitStrategy::XavierNormal, FanMode::TensorShape, 400, 16, 3)
                .unwrap();
        assert!(
            kl_xavier > 10.0 * kl_random,
            "xavier KL {kl_xavier:.3} should exceed random KL {kl_random:.3}"
        );
    }

    #[test]
    fn shallow_random_is_less_expressive_than_deep_random() {
        let shallow = training_ansatz(4, 1).unwrap();
        let deep = training_ansatz(4, 8).unwrap();
        let kl_shallow =
            expressibility_kl(&shallow, InitStrategy::Random, FanMode::Qubits, 400, 16, 3)
                .unwrap();
        let kl_deep =
            expressibility_kl(&deep, InitStrategy::Random, FanMode::Qubits, 400, 16, 3).unwrap();
        assert!(
            kl_shallow > 5.0 * kl_deep,
            "shallow KL {kl_shallow:.3} vs deep KL {kl_deep:.3}"
        );
    }

    #[test]
    fn expressibility_is_reproducible() {
        let a = training_ansatz(2, 2).unwrap();
        let k1 = expressibility_kl(&a, InitStrategy::He, FanMode::Qubits, 100, 10, 5).unwrap();
        let k2 = expressibility_kl(&a, InitStrategy::He, FanMode::Qubits, 100, 10, 5).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn validation_errors() {
        let a = training_ansatz(2, 1).unwrap();
        assert!(average_entanglement(&a, InitStrategy::Random, FanMode::Qubits, 0, 0).is_err());
        assert!(expressibility_kl(&a, InitStrategy::Random, FanMode::Qubits, 0, 10, 0).is_err());
        assert!(expressibility_kl(&a, InitStrategy::Random, FanMode::Qubits, 10, 1, 0).is_err());
    }
}
