//! Optimization-landscape scanning (the paper's motivating Fig 1).
//!
//! Fixes all circuit parameters except two and evaluates the cost on a
//! regular 2-D grid over those two angles, exposing the flattening of the
//! landscape as qubit count grows.
//!
//! # Examples
//!
//! ```
//! use plateau_core::landscape::{landscape_grid, LandscapeConfig};
//! use plateau_core::{ansatz::training_ansatz, cost::CostKind};
//!
//! let a = training_ansatz(2, 2)?;
//! let cfg = LandscapeConfig::default().with_resolution(9)?;
//! let base = vec![0.3; a.circuit.n_params()];
//! let grid = landscape_grid(&a.circuit, &CostKind::Global.observable(2), &base, 0, 1, &cfg)?;
//! assert_eq!(grid.values.len(), 9);
//! assert_eq!(grid.values[0].len(), 9);
//! // The amplitude of the scanned window quantifies landscape flatness.
//! assert!(grid.amplitude() > 0.0);
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use plateau_grad::expectation;
use plateau_sim::{Circuit, Observable};
use std::f64::consts::PI;

/// Grid geometry for a landscape scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LandscapeConfig {
    /// Lower bound of both scanned angles.
    pub min: f64,
    /// Upper bound of both scanned angles.
    pub max: f64,
    /// Grid points per axis (≥ 2).
    pub resolution: usize,
}

impl Default for LandscapeConfig {
    fn default() -> Self {
        LandscapeConfig {
            min: -PI,
            max: PI,
            resolution: 25,
        }
    }
}

impl LandscapeConfig {
    /// Returns a copy with a different resolution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `resolution < 2`.
    pub fn with_resolution(mut self, resolution: usize) -> Result<Self, CoreError> {
        if resolution < 2 {
            return Err(CoreError::InvalidConfig("resolution must be at least 2".into()));
        }
        self.resolution = resolution;
        Ok(self)
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.resolution < 2 {
            return Err(CoreError::InvalidConfig("resolution must be at least 2".into()));
        }
        if !(self.min.is_finite() && self.max.is_finite() && self.min < self.max) {
            return Err(CoreError::InvalidConfig("landscape bounds must satisfy min < max".into()));
        }
        Ok(())
    }

    /// The axis coordinates of the grid.
    pub fn axis(&self) -> Vec<f64> {
        let n = self.resolution;
        (0..n)
            .map(|i| self.min + (self.max - self.min) * i as f64 / (n - 1) as f64)
            .collect()
    }
}

/// A scanned 2-D cost surface.
#[derive(Debug, Clone, PartialEq)]
pub struct LandscapeGrid {
    /// Coordinates along the first scanned parameter.
    pub xs: Vec<f64>,
    /// Coordinates along the second scanned parameter.
    pub ys: Vec<f64>,
    /// `values[i][j]` = cost at `(xs[i], ys[j])`.
    pub values: Vec<Vec<f64>>,
}

impl LandscapeGrid {
    /// Smallest cost in the window.
    pub fn min_value(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest cost in the window.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Peak-to-peak amplitude — the quantitative "flatness" of the window.
    /// Barren plateaus shrink this toward zero as qubits grow (Fig 1).
    pub fn amplitude(&self) -> f64 {
        self.max_value() - self.min_value()
    }
}

/// Scans the cost over a 2-D grid of the parameters at `idx_a` and `idx_b`,
/// holding every other entry of `base_params` fixed.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for bad indices or grid geometry,
/// and propagates simulation errors.
pub fn landscape_grid(
    circuit: &Circuit,
    observable: &Observable,
    base_params: &[f64],
    idx_a: usize,
    idx_b: usize,
    config: &LandscapeConfig,
) -> Result<LandscapeGrid, CoreError> {
    config.validate()?;
    circuit.check_params(base_params)?;
    let n = circuit.n_params();
    if idx_a >= n || idx_b >= n {
        return Err(CoreError::InvalidConfig(format!(
            "scan indices ({idx_a}, {idx_b}) out of range for {n} parameters"
        )));
    }
    if idx_a == idx_b {
        return Err(CoreError::InvalidConfig("scan indices must differ".into()));
    }

    let axis = config.axis();
    let mut params = base_params.to_vec();
    let mut values = Vec::with_capacity(axis.len());
    for &a in &axis {
        params[idx_a] = a;
        let mut row = Vec::with_capacity(axis.len());
        for &b in &axis {
            params[idx_b] = b;
            row.push(expectation(circuit, &params, observable)?);
        }
        values.push(row);
    }

    Ok(LandscapeGrid {
        xs: axis.clone(),
        ys: axis,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::training_ansatz;
    use crate::cost::CostKind;

    #[test]
    fn axis_spans_bounds() {
        let cfg = LandscapeConfig::default().with_resolution(5).unwrap();
        let axis = cfg.axis();
        assert_eq!(axis.len(), 5);
        assert!((axis[0] + PI).abs() < 1e-12);
        assert!((axis[4] - PI).abs() < 1e-12);
    }

    #[test]
    fn single_qubit_landscape_is_analytic() {
        // 1 qubit, 1 layer: RX(a) then RY(b); C = 1 − p0.
        let a = training_ansatz(1, 1).unwrap();
        let cfg = LandscapeConfig::default().with_resolution(21).unwrap();
        let grid = landscape_grid(
            &a.circuit,
            &CostKind::Global.observable(1),
            &[0.0, 0.0],
            0,
            1,
            &cfg,
        )
        .unwrap();
        // ⟨0|RY(b)RX(a)|0⟩ = cos(a/2)cos(b/2) + i·sin(a/2)sin(b/2), so
        // p0 = cos²(a/2)cos²(b/2) + sin²(a/2)sin²(b/2).
        for (i, &x) in grid.xs.iter().enumerate() {
            for (j, &y) in grid.ys.iter().enumerate() {
                let p0 = (x / 2.0).cos().powi(2) * (y / 2.0).cos().powi(2)
                    + (x / 2.0).sin().powi(2) * (y / 2.0).sin().powi(2);
                let expected = 1.0 - p0;
                assert!(
                    (grid.values[i][j] - expected).abs() < 1e-10,
                    "at ({x}, {y}): {} vs {expected}",
                    grid.values[i][j]
                );
            }
        }
        // Center of the window (θ = 0) is the global minimum.
        assert!((grid.min_value() - 0.0).abs() < 1e-10);
        assert!((grid.max_value() - 1.0).abs() < 1e-10);
        assert!((grid.amplitude() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn amplitude_shrinks_with_qubits_under_random_base() {
        // The Fig 1 effect: same scan window, more qubits → flatter window.
        let cfg = LandscapeConfig::default().with_resolution(7).unwrap();
        let mut amplitudes = Vec::new();
        for n in [2usize, 6] {
            let a = training_ansatz(n, 8).unwrap();
            // Deterministic pseudo-random base point.
            let base: Vec<f64> = (0..a.circuit.n_params())
                .map(|i| ((i as f64) * 2.399963).sin() * PI)
                .collect();
            let grid = landscape_grid(
                &a.circuit,
                &CostKind::Global.observable(n),
                &base,
                0,
                1,
                &cfg,
            )
            .unwrap();
            amplitudes.push(grid.amplitude());
        }
        assert!(
            amplitudes[1] < amplitudes[0],
            "flattening expected: {amplitudes:?}"
        );
    }

    #[test]
    fn error_paths() {
        let a = training_ansatz(2, 1).unwrap();
        let obs = CostKind::Global.observable(2);
        let base = vec![0.0; a.circuit.n_params()];
        let cfg = LandscapeConfig::default();
        assert!(landscape_grid(&a.circuit, &obs, &base, 0, 0, &cfg).is_err());
        assert!(landscape_grid(&a.circuit, &obs, &base, 0, 99, &cfg).is_err());
        assert!(landscape_grid(&a.circuit, &obs, &[0.0], 0, 1, &cfg).is_err());
        assert!(LandscapeConfig::default().with_resolution(1).is_err());
        let bad = LandscapeConfig {
            min: 1.0,
            max: -1.0,
            resolution: 5,
        };
        assert!(landscape_grid(&a.circuit, &obs, &base, 0, 1, &bad).is_err());
    }
}
