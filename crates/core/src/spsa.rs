//! Simultaneous Perturbation Stochastic Approximation (Spall 1992) — the
//! standard gradient-free optimizer for noisy/hardware VQAs, provided as a
//! baseline: does avoiding exact gradients change the plateau picture?
//! (It doesn't — SPSA's perturbation estimate inherits the same vanishing
//! signal — and this module lets the benches demonstrate that.)
//!
//! Per iteration, with decaying gains `a_k = a/(k+1+A)^α`,
//! `c_k = c/(k+1)^γ` and a random sign vector `Δ`:
//!
//! ```text
//! ĝ = [C(θ + c_k Δ) − C(θ − c_k Δ)] / (2 c_k) · Δ⁻¹
//! θ ← θ − a_k ĝ
//! ```
//!
//! # Examples
//!
//! ```
//! use plateau_core::{ansatz::training_ansatz, cost::CostKind};
//! use plateau_core::spsa::{train_spsa, SpsaConfig};
//! use plateau_core::init::{FanMode, InitStrategy};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let a = training_ansatz(3, 2)?;
//! let mut rng = StdRng::seed_from_u64(9);
//! let theta0 = InitStrategy::XavierNormal.sample_params(&a.shape, FanMode::Qubits, &mut rng)?;
//! let hist = train_spsa(
//!     &a.circuit,
//!     &CostKind::Global.observable(3),
//!     theta0,
//!     &SpsaConfig::default(),
//!     120,
//!     &mut rng,
//! )?;
//! assert!(hist.final_loss() < hist.initial_loss());
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::error::CoreError;
use crate::train::TrainingHistory;
use plateau_grad::expectation;
use plateau_sim::{Circuit, Observable};
use plateau_rng::Rng;

/// SPSA gain-sequence configuration (Spall's standard parameterization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpsaConfig {
    /// Step-size numerator `a`.
    pub a: f64,
    /// Step-size stabilizer `A` (typically ~10% of the iteration budget).
    pub big_a: f64,
    /// Step-size decay exponent α (0.602 is Spall's asymptotically optimal
    /// practical value).
    pub alpha: f64,
    /// Perturbation numerator `c`.
    pub c: f64,
    /// Perturbation decay exponent γ (0.101 standard).
    pub gamma: f64,
}

impl Default for SpsaConfig {
    fn default() -> Self {
        SpsaConfig {
            a: 0.2,
            big_a: 10.0,
            alpha: 0.602,
            c: 0.2,
            gamma: 0.101,
        }
    }
}

impl SpsaConfig {
    fn validate(&self) -> Result<(), CoreError> {
        let ok = self.a > 0.0
            && self.big_a >= 0.0
            && self.alpha > 0.0
            && self.c > 0.0
            && self.gamma > 0.0
            && [self.a, self.big_a, self.alpha, self.c, self.gamma]
                .iter()
                .all(|v| v.is_finite());
        if ok {
            Ok(())
        } else {
            Err(CoreError::InvalidConfig("invalid SPSA gain sequence".into()))
        }
    }

    fn step_gain(&self, k: usize) -> f64 {
        self.a / (k as f64 + 1.0 + self.big_a).powf(self.alpha)
    }

    fn perturbation_gain(&self, k: usize) -> f64 {
        self.c / (k as f64 + 1.0).powf(self.gamma)
    }
}

/// Trains with SPSA for `iterations` steps (each step costs exactly two
/// circuit evaluations regardless of the parameter count).
///
/// The recorded `grad_norms` are the norms of the SPSA gradient
/// *estimates*, not exact gradients.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for bad gains and propagates
/// simulator errors.
pub fn train_spsa<R: Rng + ?Sized>(
    circuit: &Circuit,
    observable: &Observable,
    initial_params: Vec<f64>,
    config: &SpsaConfig,
    iterations: usize,
    rng: &mut R,
) -> Result<TrainingHistory, CoreError> {
    config.validate()?;
    let mut params = initial_params;
    circuit.check_params(&params)?;
    let n = params.len();

    let mut losses = Vec::with_capacity(iterations + 1);
    let mut grad_norms = Vec::with_capacity(iterations);
    losses.push(expectation(circuit, &params, observable)?);

    let mut work_plus = params.clone();
    let mut work_minus = params.clone();
    for k in 0..iterations {
        let ck = config.perturbation_gain(k);
        let ak = config.step_gain(k);
        // Rademacher ±1 perturbation directions.
        let delta: Vec<f64> = (0..n)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        for i in 0..n {
            work_plus[i] = params[i] + ck * delta[i];
            work_minus[i] = params[i] - ck * delta[i];
        }
        let f_plus = expectation(circuit, &work_plus, observable)?;
        let f_minus = expectation(circuit, &work_minus, observable)?;
        let scale = (f_plus - f_minus) / (2.0 * ck);

        let mut norm_sq = 0.0;
        for i in 0..n {
            // Δ entries are ±1 so Δ⁻¹ = Δ.
            let ghat = scale * delta[i];
            params[i] -= ak * ghat;
            norm_sq += ghat * ghat;
        }
        grad_norms.push(norm_sq.sqrt());
        losses.push(expectation(circuit, &params, observable)?);
    }

    TrainingHistory::new(losses, grad_norms, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::training_ansatz;
    use crate::cost::CostKind;
    use crate::init::{FanMode, InitStrategy};
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    #[test]
    fn gain_sequences_decay() {
        let cfg = SpsaConfig::default();
        assert!(cfg.step_gain(0) > cfg.step_gain(10));
        assert!(cfg.step_gain(10) > cfg.step_gain(100));
        assert!(cfg.perturbation_gain(0) > cfg.perturbation_gain(100));
    }

    #[test]
    fn spsa_trains_from_bounded_init() {
        let a = training_ansatz(4, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let theta0 = InitStrategy::XavierNormal
            .sample_params(&a.shape, FanMode::Qubits, &mut rng)
            .unwrap();
        let obs = CostKind::Global.observable(4);
        let hist =
            train_spsa(&a.circuit, &obs, theta0, &SpsaConfig::default(), 200, &mut rng).unwrap();
        assert!(
            hist.final_loss() < 0.5 * hist.initial_loss(),
            "{} → {}",
            hist.initial_loss(),
            hist.final_loss()
        );
        assert_eq!(hist.losses.len(), 201);
        assert_eq!(hist.grad_norms.len(), 200);
    }

    #[test]
    fn spsa_cannot_escape_the_plateau_either() {
        // From a random start at moderate width, the SPSA estimate carries
        // the same exponentially small signal: the loss barely moves.
        let a = training_ansatz(8, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let theta0 = InitStrategy::Random
            .sample_params(&a.shape, FanMode::Qubits, &mut rng)
            .unwrap();
        let obs = CostKind::Global.observable(8);
        let hist =
            train_spsa(&a.circuit, &obs, theta0, &SpsaConfig::default(), 50, &mut rng).unwrap();
        assert!(
            hist.final_loss() > 0.9,
            "random init should stay on the plateau, got {}",
            hist.final_loss()
        );
    }

    #[test]
    fn config_validation() {
        let a = training_ansatz(2, 1).unwrap();
        let obs = CostKind::Global.observable(2);
        let theta = vec![0.1; a.circuit.n_params()];
        let mut rng = StdRng::seed_from_u64(5);
        let bad = SpsaConfig { c: 0.0, ..SpsaConfig::default() };
        assert!(train_spsa(&a.circuit, &obs, theta.clone(), &bad, 1, &mut rng).is_err());
        let bad = SpsaConfig { a: f64::NAN, ..SpsaConfig::default() };
        assert!(train_spsa(&a.circuit, &obs, theta, &bad, 1, &mut rng).is_err());
    }

    #[test]
    fn reproducible_with_seed() {
        let a = training_ansatz(3, 1).unwrap();
        let obs = CostKind::Global.observable(3);
        let theta = vec![0.3; a.circuit.n_params()];
        let h1 = train_spsa(
            &a.circuit,
            &obs,
            theta.clone(),
            &SpsaConfig::default(),
            20,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let h2 = train_spsa(
            &a.circuit,
            &obs,
            theta,
            &SpsaConfig::default(),
            20,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(h1, h2);
    }
}
