//! Related-work barren-plateau mitigations, implemented as comparison
//! baselines for the paper's initialization strategies:
//!
//! - **Identity-block initialization** (Grant, Wossnig, Ostaszewski &
//!   Benedetti 2019 — the paper's §II-a): the ansatz is built from blocks
//!   `M(θ₂) · M(θ₁)` with the second half mirroring the first's structure
//!   in reverse; initializing `θ₂ = −θ₁` (mirrored) makes every block the
//!   identity at the start of training, so the circuit begins far from the
//!   2-design regime while all parameters remain independently trainable.
//! - **Layerwise training** (Skolik et al. 2021 — the paper's §II-c):
//!   optimize the first layer's parameters alone, then progressively
//!   unfreeze deeper layers, so early optimization happens in a shallow,
//!   plateau-free landscape.
//!
//! # Examples
//!
//! ```
//! use plateau_core::mitigation::{identity_block_ansatz, identity_block_params};
//! use plateau_rng::{rngs::StdRng, SeedableRng};
//!
//! let ansatz = identity_block_ansatz(4, 2, 1)?;
//! let mut rng = StdRng::seed_from_u64(0);
//! let theta = identity_block_params(&ansatz, &mut rng)?;
//! // At initialization every block is exactly the identity, so the state
//! // equals the fixed RY(π/4) preparation layer's output:
//! // p(|0…0⟩) = cos(π/8)^(2·4).
//! let state = ansatz.circuit.run(&theta)?;
//! let expected = (std::f64::consts::PI / 8.0).cos().powi(8);
//! assert!((state.probability_all_zeros() - expected).abs() < 1e-10);
//! # Ok::<(), plateau_core::CoreError>(())
//! ```

use crate::ansatz::Ansatz;
use crate::error::CoreError;
use crate::init::LayerShape;
use crate::optim::Optimizer;
use crate::train::TrainingHistory;
use plateau_grad::{expectation, Adjoint, GradientEngine};
use plateau_sim::{Circuit, Observable};
use plateau_rng::Rng;
use std::f64::consts::PI;

/// Builds the Grant-style identity-block ansatz: `blocks` repetitions of
/// `M(θ_a)` followed by the *structural dagger* of `M` with independent
/// parameters `θ_b`, where `M` is `layers_per_half` layers of the paper's
/// training ansatz (RX·RY per qubit + CZ chain).
///
/// The circuit opens with McClean et al.'s fixed `RY(π/4)` preparation
/// layer. This matters: feeding the blocks a computational basis state
/// makes identity-point gradients of many observables vanish for purely
/// structural reasons (every tangent direction is a dressed operator with
/// a bounded light cone, and `⟨b|·|b⟩` of any flip pattern is zero), which
/// would masquerade as a plateau. `layers_per_half` controls the depth of
/// each block half; Grant et al. use shallow multi-layer blocks.
///
/// Parameter layout per block: the `2n·layers_per_half` first-half angles
/// in emission order, then the second-half angles in exactly mirrored
/// (reversed) order, so [`identity_block_params`] can pair them.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for zero qubits/blocks/layers.
pub fn identity_block_ansatz(
    n_qubits: usize,
    blocks: usize,
    layers_per_half: usize,
) -> Result<Ansatz, CoreError> {
    if n_qubits == 0 || blocks == 0 || layers_per_half == 0 {
        return Err(CoreError::InvalidConfig(
            "identity-block ansatz needs nonzero qubits, blocks, and layers".into(),
        ));
    }
    let mut circuit = Circuit::new(n_qubits)?;
    // Fixed RY(π/4) preparation layer (McClean et al.'s convention, kept
    // by Grant et al.): without it the incoming state is a computational
    // basis state and the identity-point gradients of most observables
    // vanish for structural (not plateau) reasons.
    for q in 0..n_qubits {
        circuit.push_rotation_const(plateau_sim::RotationGate::Ry, q, PI / 4.0)?;
    }
    for _ in 0..blocks {
        // First half: M = layers of (rotations, CZ chain).
        for _ in 0..layers_per_half {
            for q in 0..n_qubits {
                circuit.rx(q)?;
                circuit.ry(q)?;
            }
            for q in 0..n_qubits.saturating_sub(1) {
                circuit.cz(q, q + 1)?;
            }
        }
        // Second half: M† structurally — layers reversed, each layer's CZ
        // chain first (self-inverse), then rotations in reversed order.
        for _ in 0..layers_per_half {
            for q in 0..n_qubits.saturating_sub(1) {
                circuit.cz(q, q + 1)?;
            }
            for q in (0..n_qubits).rev() {
                circuit.ry(q)?;
                circuit.rx(q)?;
            }
        }
    }
    let shape = LayerShape::new(n_qubits, 4 * n_qubits * layers_per_half, blocks)?;
    Ok(Ansatz { circuit, shape })
}

/// Samples identity-block initial parameters for an ansatz built by
/// [`identity_block_ansatz`]: first halves drawn from `U(0, 2π)` (the
/// random baseline), second halves set to the mirrored negation so every
/// block collapses to the identity.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] when the ansatz shape does not
/// have the identity-block layout (`params_per_layer = 4·n_qubits`).
pub fn identity_block_params<R: Rng>(
    ansatz: &Ansatz,
    rng: &mut R,
) -> Result<Vec<f64>, CoreError> {
    let n = ansatz.shape.n_qubits();
    let ppl = ansatz.shape.params_per_layer();
    // Layout check: ppl = 4·n·layers_per_half for some integer ≥ 1.
    if !ppl.is_multiple_of(4 * n) || ppl == 0 {
        return Err(CoreError::InvalidConfig(
            "ansatz does not have identity-block parameter layout".into(),
        ));
    }
    let half = ppl / 2;
    let blocks = ansatz.shape.layers();
    let mut params = Vec::with_capacity(blocks * ppl);
    for _ in 0..blocks {
        let first: Vec<f64> = (0..half).map(|_| rng.gen_range(0.0..2.0 * PI)).collect();
        params.extend_from_slice(&first);
        // Mirror: second-half parameter j undoes first-half parameter
        // (half − 1 − j).
        for j in 0..half {
            params.push(-first[half - 1 - j]);
        }
    }
    Ok(params)
}

/// Progressive layerwise training: stage `s` optimizes only the parameters
/// of layers `0..=s` (a fresh optimizer from `make_optimizer` per stage,
/// matching Skolik et al.'s protocol), running `iterations_per_stage`
/// steps per stage. Gradients of frozen parameters are masked to zero.
///
/// The returned history concatenates all stages
/// (`layers × iterations_per_stage` iterations total).
///
/// # Errors
///
/// Propagates configuration and simulator errors.
pub fn train_layerwise(
    ansatz: &Ansatz,
    observable: &Observable,
    initial_params: Vec<f64>,
    make_optimizer: &mut dyn FnMut() -> Box<dyn Optimizer>,
    iterations_per_stage: usize,
) -> Result<TrainingHistory, CoreError> {
    let mut params = initial_params;
    ansatz.circuit.check_params(&params)?;
    let ppl = ansatz.shape.params_per_layer();
    let layers = ansatz.shape.layers();

    let mut losses = Vec::with_capacity(layers * iterations_per_stage + 1);
    let mut grad_norms = Vec::with_capacity(layers * iterations_per_stage);
    losses.push(expectation(&ansatz.circuit, &params, observable)?);

    for stage in 0..layers {
        let active = (stage + 1) * ppl;
        let mut optimizer = make_optimizer();
        for _ in 0..iterations_per_stage {
            let mut grad = Adjoint.gradient(&ansatz.circuit, &params, observable)?;
            for g in grad.iter_mut().skip(active) {
                *g = 0.0;
            }
            grad_norms.push(grad.iter().map(|g| g * g).sum::<f64>().sqrt());
            optimizer.step(&mut params, &grad)?;
            losses.push(expectation(&ansatz.circuit, &params, observable)?);
        }
    }

    TrainingHistory::new(losses, grad_norms, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::training_ansatz;
    use crate::cost::CostKind;
    use crate::init::{FanMode, InitStrategy};
    use crate::optim::Adam;
    use plateau_sim::{Observable, PauliString};
    use plateau_rng::rngs::StdRng;
    use plateau_rng::SeedableRng;

    #[test]
    fn identity_block_ansatz_counts() {
        let a = identity_block_ansatz(3, 2, 1).unwrap();
        // 3 fixed prep RYs + per block: 6 rot + 2 CZ + 2 CZ + 6 rot = 16.
        assert_eq!(a.circuit.gate_count(), 35);
        assert_eq!(a.circuit.n_params(), 24);
        assert_eq!(a.shape.params_per_layer(), 12);
        let deep = identity_block_ansatz(3, 2, 2).unwrap();
        assert_eq!(deep.circuit.n_params(), 48);
        assert_eq!(deep.shape.params_per_layer(), 24);
        assert!(identity_block_ansatz(0, 1, 1).is_err());
        assert!(identity_block_ansatz(1, 0, 1).is_err());
        assert!(identity_block_ansatz(1, 1, 0).is_err());
    }

    #[test]
    fn identity_block_init_yields_exact_identity() {
        for (n, blocks, lph, seed) in [
            (2usize, 1usize, 1usize, 0u64),
            (3, 2, 1, 1),
            (5, 3, 1, 2),
            (3, 2, 2, 3),
            (4, 1, 3, 4),
        ] {
            let a = identity_block_ansatz(n, blocks, lph).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let theta = identity_block_params(&a, &mut rng).unwrap();
            assert_eq!(theta.len(), a.circuit.n_params());
            // All blocks cancel: the state equals the prep layer's output
            // RY(π/4)^⊗n |0⟩, i.e. every qubit at angle π/4 on the Bloch
            // sphere → p(all zeros) = cos(π/8)^{2n}.
            let s = a.circuit.run(&theta).unwrap();
            let expected = (std::f64::consts::PI / 8.0).cos().powi(2 * n as i32);
            assert!(
                (s.probability_all_zeros() - expected).abs() < 1e-10,
                "n={n} blocks={blocks} lph={lph}: p0 = {} vs {expected}",
                s.probability_all_zeros()
            );
        }
    }

    #[test]
    fn identity_block_params_rejects_foreign_ansatz() {
        let plain = training_ansatz(3, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(identity_block_params(&plain, &mut rng).is_err());
    }

    #[test]
    fn prep_layer_keeps_identity_point_gradients_generic() {
        // Without the RY(π/4) prep layer the incoming basis state would
        // zero out gradients structurally; with it, even single-layer
        // blocks see O(1) gradients for a generic observable.
        let n = 4;
        let a = identity_block_ansatz(n, 2, 1).unwrap();
        let obs = Observable::pauli(PauliString::parse("XYXZ").unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let theta = identity_block_params(&a, &mut rng).unwrap();
        let g = Adjoint.gradient(&a.circuit, &theta, &obs).unwrap();
        let norm = g.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm > 1e-2, "gradient should be alive, norm {norm:.3e}");
    }

    #[test]
    fn identity_block_keeps_gradients_alive_for_generic_observable() {
        // The point of Grant et al.: with entanglers inside each block
        // half, the gradient at the identity-block point is NOT
        // exponentially suppressed, while random initialization of the
        // same circuit plateaus for a global observable.
        // Setup mirrors Grant et al.: local two-qubit observable (they
        // follow McClean's ⟨Z₁Z₂⟩-style cost; we take Y₀Z₁, whose odd Y
        // count avoids the time-reversal symmetry that pins gradients of
        // real observables to zero at the real mirror point), and
        // per-parameter gradient magnitudes rather than the (√P-growing)
        // vector norm.
        let n = 10;
        let lph = 2;
        let obs = Observable::pauli(
            PauliString::parse(&format!("{}ZY", "I".repeat(n - 2))).unwrap(),
        )
        .unwrap();
        let first_half = 2 * n * lph;
        let avg = |f: &mut dyn FnMut(u64) -> f64| (0..6).map(f).sum::<f64>() / 6.0;

        let mean_sq_for = |blocks: usize, identity: bool| -> f64 {
            let a = identity_block_ansatz(n, blocks, lph).unwrap();
            avg(&mut |k| {
                let theta = if identity {
                    let mut rng = StdRng::seed_from_u64(100 + k);
                    identity_block_params(&a, &mut rng).unwrap()
                } else {
                    let mut rng = StdRng::seed_from_u64(200 + k);
                    InitStrategy::Random
                        .sample_params(&a.shape, FanMode::Qubits, &mut rng)
                        .unwrap()
                };
                let g = Adjoint.gradient(&a.circuit, &theta, &obs).unwrap();
                g[..first_half].iter().map(|x| x * x).sum::<f64>() / first_half as f64
            })
        };

        let id_shallow = mean_sq_for(1, true);
        let id_deep = mean_sq_for(5, true);
        let rand_deep = mean_sq_for(5, false);

        // Grant et al.'s two claims: (1) the identity-point gradient does
        // not decay with circuit depth — the trailing blocks cancel out of
        // the dressed generators entirely; (2) it dominates the random
        // baseline once the random circuit has scrambled.
        assert!(
            (id_shallow - id_deep).abs() < 1e-10 * id_shallow.max(1e-30),
            "identity-block gradient should be depth-independent: {id_shallow:.3e} vs {id_deep:.3e}"
        );
        assert!(
            id_deep > 3.0 * rand_deep,
            "identity-block mean-square grad {id_deep:.3e} should beat random {rand_deep:.3e}"
        );
    }

    #[test]
    fn layerwise_training_reduces_cost() {
        let a = training_ansatz(4, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let theta0 = InitStrategy::Random
            .sample_params(&a.shape, FanMode::Qubits, &mut rng)
            .unwrap();
        let obs = CostKind::Global.observable(4);
        let hist = train_layerwise(
            &a,
            &obs,
            theta0,
            &mut || Box::new(Adam::new(0.1).expect("valid lr")),
            15,
        )
        .unwrap();
        assert_eq!(hist.losses.len(), 3 * 15 + 1);
        assert!(hist.final_loss() < hist.initial_loss());
    }

    #[test]
    fn layerwise_first_stage_touches_only_first_layer() {
        let a = training_ansatz(3, 2).unwrap();
        let theta0 = vec![0.5; a.circuit.n_params()];
        let obs = CostKind::Global.observable(3);
        let hist = train_layerwise(
            &a,
            &obs,
            theta0.clone(),
            &mut || Box::new(Adam::new(0.1).expect("valid lr")),
            1,
        )
        .unwrap();
        // After stage 0's single step, second-layer params are untouched…
        // but the final history includes stage 1 too, so replicate manually:
        // run only one stage by constructing a single-layer view.
        // Instead assert via gradient masking: train 1 iteration per stage
        // over 2 stages; the second layer may only change during stage 1.
        // So compare a one-stage run:
        let single_stage = train_layerwise(
            &a,
            &obs,
            theta0.clone(),
            &mut || Box::new(Adam::new(0.1).expect("valid lr")),
            0,
        )
        .unwrap();
        assert_eq!(single_stage.final_params, theta0);
        let ppl = a.shape.params_per_layer();
        // hist ran 1 iter in stage0 (mask second layer) + 1 iter stage1.
        // Verify at least that the run completed with both stages recorded.
        assert_eq!(hist.grad_norms.len(), 2);
        assert_eq!(hist.final_params.len(), 2 * ppl);
    }

    #[test]
    fn layerwise_rejects_wrong_params() {
        let a = training_ansatz(2, 2).unwrap();
        let obs = CostKind::Global.observable(2);
        assert!(train_layerwise(
            &a,
            &obs,
            vec![0.0; 3],
            &mut || Box::new(Adam::new(0.1).expect("valid lr")),
            1,
        )
        .is_err());
    }
}
