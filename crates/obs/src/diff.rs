//! Structural run-to-run trace diff: compare two traces (or a trace
//! against a committed `trace_baseline` document) per span name, with a
//! configurable relative threshold on total wall time.
//!
//! The diff is *structural first*: span names that appear only on one
//! side are reported as new/vanished (instrumentation drift is itself a
//! finding), then shared names are compared on total time. A name whose
//! relative slowdown exceeds the threshold is a regression; the CI gate
//! (`plateau obs diff`, wired into `scripts/ci.sh`) turns any regression
//! into a nonzero exit.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::analyze::{baseline_entries, Analysis, BaselineEntry, Trace, TraceError};
use crate::json::Json;
use crate::span::fmt_duration;

/// How one span name changed between the two sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// Present only in the new trace.
    New,
    /// Present only in the baseline.
    Vanished,
    /// Slower by more than the threshold — a regression.
    Slower,
    /// Faster by more than the threshold.
    Faster,
    /// Within the threshold either way.
    Unchanged,
}

/// Per-name comparison result.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// The span name.
    pub name: String,
    /// Classification (regressions are `Slower`).
    pub kind: DiffKind,
    /// Baseline side, when present.
    pub base: Option<BaselineEntry>,
    /// New side, when present.
    pub new: Option<BaselineEntry>,
    /// `(new_total − base_total) / base_total`, when both sides exist.
    pub rel_delta: Option<f64>,
}

impl DiffEntry {
    /// Whether this entry fails the gate.
    pub fn is_regression(&self) -> bool {
        self.kind == DiffKind::Slower
    }
}

/// The full comparison of two aggregated traces.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// One entry per span name seen on either side, regressions first,
    /// then by descending absolute relative change.
    pub entries: Vec<DiffEntry>,
    /// The relative threshold the report was computed with.
    pub threshold: f64,
}

impl DiffReport {
    /// Number of names classified as regressions.
    pub fn regressions(&self) -> usize {
        self.entries.iter().filter(|e| e.is_regression()).count()
    }

    /// Renders the comparison as an aligned text table plus a verdict
    /// line (`# PASS` / `# FAIL: N regression(s)`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .chain(["name".len()])
            .max()
            .unwrap_or(4);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>10}  {:>10}  {:>8}  {:>12}",
            "name", "base", "new", "delta", "verdict"
        );
        for e in &self.entries {
            let base = e.base.map_or_else(|| "-".into(), |b| fmt_duration(b.total_ns));
            let new = e.new.map_or_else(|| "-".into(), |n| fmt_duration(n.total_ns));
            let delta = e
                .rel_delta
                .map_or_else(|| "-".into(), |d| format!("{:+.1}%", 100.0 * d));
            let verdict = match e.kind {
                DiffKind::New => "new",
                DiffKind::Vanished => "vanished",
                DiffKind::Slower => "REGRESSION",
                DiffKind::Faster => "faster",
                DiffKind::Unchanged => "ok",
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>10}  {:>10}  {:>8}  {:>12}",
                e.name, base, new, delta, verdict
            );
        }
        let regressions = self.regressions();
        if regressions == 0 {
            let _ = writeln!(
                out,
                "# PASS: no span slower than {:.0}% of baseline",
                100.0 * (1.0 + self.threshold)
            );
        } else {
            let _ = writeln!(
                out,
                "# FAIL: {regressions} regression(s) beyond +{:.0}% threshold",
                100.0 * self.threshold
            );
        }
        out
    }
}

/// Compares per-name aggregates with a relative `threshold` on total
/// time: `new > base × (1 + threshold)` is a regression.
pub fn diff_entries(
    base: &BTreeMap<String, BaselineEntry>,
    new: &BTreeMap<String, BaselineEntry>,
    threshold: f64,
) -> DiffReport {
    let mut entries = Vec::new();
    for (name, b) in base {
        match new.get(name) {
            None => entries.push(DiffEntry {
                name: name.clone(),
                kind: DiffKind::Vanished,
                base: Some(*b),
                new: None,
                rel_delta: None,
            }),
            Some(n) => {
                // A zero-duration baseline cannot express a ratio; treat
                // its floor as one nanosecond.
                let base_ns = b.total_ns.max(1) as f64;
                let rel = (n.total_ns as f64 - base_ns) / base_ns;
                let kind = if rel > threshold {
                    DiffKind::Slower
                } else if rel < -threshold {
                    DiffKind::Faster
                } else {
                    DiffKind::Unchanged
                };
                entries.push(DiffEntry {
                    name: name.clone(),
                    kind,
                    base: Some(*b),
                    new: Some(*n),
                    rel_delta: Some(rel),
                });
            }
        }
    }
    for (name, n) in new {
        if !base.contains_key(name) {
            entries.push(DiffEntry {
                name: name.clone(),
                kind: DiffKind::New,
                base: None,
                new: Some(*n),
                rel_delta: None,
            });
        }
    }
    entries.sort_by(|a, b| {
        let sev = |e: &DiffEntry| match e.kind {
            DiffKind::Slower => 0,
            DiffKind::Vanished => 1,
            DiffKind::New => 2,
            DiffKind::Faster => 3,
            DiffKind::Unchanged => 4,
        };
        sev(a)
            .cmp(&sev(b))
            .then_with(|| {
                let mag = |e: &DiffEntry| e.rel_delta.map_or(0.0, f64::abs);
                mag(b).partial_cmp(&mag(a)).unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.name.cmp(&b.name))
    });
    DiffReport { entries, threshold }
}

/// Loads one side of a diff from disk: either a committed
/// `trace_baseline` JSON document or a raw JSONL trace (detected by
/// content, not extension — a baseline parses as a single JSON object).
///
/// # Errors
///
/// Propagates [`TraceError`] from whichever interpretation applies.
pub fn load_side(path: &Path) -> Result<BTreeMap<String, BaselineEntry>, TraceError> {
    let text = std::fs::read_to_string(path)?;
    if let Ok(doc) = Json::parse(&text) {
        if doc.get("type").and_then(Json::as_str) == Some("trace_baseline") {
            return baseline_entries(&doc);
        }
        // A single-record trace also parses whole; fall through.
    }
    let trace = Trace::parse(&text)?;
    Ok((&Analysis::of(&trace)).into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(count: u64, total_ns: u64) -> BaselineEntry {
        BaselineEntry {
            count,
            total_ns,
            self_ns: total_ns,
        }
    }

    fn side(pairs: &[(&str, u64)]) -> BTreeMap<String, BaselineEntry> {
        pairs
            .iter()
            .map(|&(n, t)| (n.to_string(), entry(1, t)))
            .collect()
    }

    #[test]
    fn identical_sides_pass() {
        let a = side(&[("scan", 1000), ("cell", 400)]);
        let report = diff_entries(&a, &a, 0.2);
        assert_eq!(report.regressions(), 0);
        assert!(report.entries.iter().all(|e| e.kind == DiffKind::Unchanged));
        assert!(report.render().contains("# PASS"));
    }

    #[test]
    fn slowdown_beyond_threshold_is_a_regression() {
        let base = side(&[("scan", 1000), ("cell", 400)]);
        let new = side(&[("scan", 1300), ("cell", 430)]);
        let report = diff_entries(&base, &new, 0.2);
        assert_eq!(report.regressions(), 1);
        // Regressions sort first.
        assert_eq!(report.entries[0].name, "scan");
        assert_eq!(report.entries[0].kind, DiffKind::Slower);
        assert!((report.entries[0].rel_delta.unwrap() - 0.3).abs() < 1e-9);
        assert!(report.render().contains("REGRESSION"));
        assert!(report.render().contains("# FAIL"));
        // The +30% slowdown passes a looser gate.
        assert_eq!(diff_entries(&base, &new, 0.5).regressions(), 0);
    }

    #[test]
    fn speedups_are_reported_but_never_fail() {
        let base = side(&[("scan", 1000)]);
        let new = side(&[("scan", 500)]);
        let report = diff_entries(&base, &new, 0.2);
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.entries[0].kind, DiffKind::Faster);
    }

    #[test]
    fn structural_changes_are_surfaced() {
        let base = side(&[("scan", 1000), ("old_span", 10)]);
        let new = side(&[("scan", 1000), ("new_span", 10)]);
        let report = diff_entries(&base, &new, 0.2);
        assert_eq!(report.regressions(), 0);
        let kind_of = |n: &str| {
            report
                .entries
                .iter()
                .find(|e| e.name == n)
                .map(|e| e.kind)
                .unwrap()
        };
        assert_eq!(kind_of("old_span"), DiffKind::Vanished);
        assert_eq!(kind_of("new_span"), DiffKind::New);
        let rendered = report.render();
        assert!(rendered.contains("vanished"));
        assert!(rendered.contains("new"));
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let base = side(&[("burst", 0)]);
        let new = side(&[("burst", 100)]);
        let report = diff_entries(&base, &new, 0.2);
        assert_eq!(report.regressions(), 1);
        assert!(report.entries[0].rel_delta.unwrap().is_finite());
    }
}
