//! The perf ledger: an append-only history of benchmark results.
//!
//! Every bench bin appends one `{"type":"perf",...}` record per benchmark
//! to `<dir>/perf.jsonl` — git revision, bench id, config, median and p90
//! wall time, peak heap bytes (when a
//! [`CountingAllocator`](crate::alloc::CountingAllocator) is profiling),
//! and the machine's core count. Unlike the point-in-time `BENCH_*.json`
//! files (which each `--record` overwrites), the perf ledger accumulates
//! across runs, so `plateau obs perf list|trend|regress` can ask how a
//! bench has moved over the last N commits instead of comparing against a
//! single frozen baseline.
//!
//! Enablement mirrors the experiment ledger, on its own `PLATEAU_PERF`
//! variable (`1`/`true`/`on` → the default `target/obs` directory, any
//! other non-empty value → that directory, unset/`0` → disabled), with
//! the programmatic [`set_perf_dir`] always winning. Disabled is the
//! default so test runs of bench code never pollute the history; CI
//! exports `PLATEAU_PERF=target/obs` around its gate bins.
//!
//! The read side groups records by bench id: [`trends`] fits a least-
//! squares line (via `plateau_stats::fit_line`) through each bench's
//! median history and [`trend_svg`] plots it; [`regress`] compares the
//! latest record against the *median of its recorded history* with a
//! relative threshold — robust to a single outlier run in a way a frozen
//! baseline file is not.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use plateau_stats::{fit_line, LineFit};

use crate::alloc::fmt_bytes;
use crate::json::Json;
use crate::manifest::git_describe;
use crate::span::fmt_duration;

/// `None` = not yet initialized from the environment;
/// `Some(None)` = disabled; `Some(Some(dir))` = enabled.
static DIR: Mutex<Option<Option<PathBuf>>> = Mutex::new(None);

/// File name under the perf directory.
pub const PERF_FILE: &str = "perf.jsonl";

fn dir_from_env() -> Option<PathBuf> {
    let raw = std::env::var("PLATEAU_PERF").ok()?;
    match raw.trim() {
        "" | "0" | "false" | "off" | "no" => None,
        "1" | "true" | "on" | "yes" => Some(PathBuf::from(crate::ledger::DEFAULT_DIR)),
        dir => Some(PathBuf::from(dir)),
    }
}

/// The directory perf records append to, or `None` when disabled.
pub fn perf_dir() -> Option<PathBuf> {
    let mut state = DIR.lock().unwrap_or_else(|p| p.into_inner());
    state.get_or_insert_with(dir_from_env).clone()
}

/// Enables the perf ledger at `dir` (or disables it with `None`). Wins
/// over `PLATEAU_PERF`.
pub fn set_perf_dir(dir: Option<&Path>) {
    let mut state = DIR.lock().unwrap_or_else(|p| p.into_inner());
    *state = Some(dir.map(PathBuf::from));
}

/// Forgets any programmatic override so the next query re-reads
/// `PLATEAU_PERF` (test hook).
pub fn reset_perf() {
    let mut state = DIR.lock().unwrap_or_else(|p| p.into_inner());
    *state = None;
}

/// Whether [`record_perf`] would write anything.
pub fn perf_enabled() -> bool {
    perf_dir().is_some()
}

/// One benchmark result headed for the ledger. The ledger adds the
/// timestamp, git revision, and core count itself.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    bench: String,
    config: Vec<(String, Json)>,
    median_ns: f64,
    p90_ns: f64,
    peak_bytes: Option<u64>,
}

impl PerfRecord {
    /// A record for the named benchmark (e.g. `"training_step/serial"`).
    pub fn new(bench: &str, median_ns: f64, p90_ns: f64) -> PerfRecord {
        PerfRecord {
            bench: bench.to_string(),
            config: Vec::new(),
            median_ns,
            p90_ns,
            peak_bytes: None,
        }
    }

    /// Adds one config pair (builder style).
    pub fn config(mut self, key: &str, value: Json) -> PerfRecord {
        self.config.push((key.to_string(), value));
        self
    }

    /// Stamps the peak heap footprint observed during the bench.
    pub fn peak_bytes(mut self, bytes: u64) -> PerfRecord {
        self.peak_bytes = Some(bytes);
        self
    }
}

/// Appends one record to `<dir>/perf.jsonl`. Returns the file path, or
/// `Ok(None)` when the perf ledger is disabled.
pub fn record_perf(record: &PerfRecord) -> io::Result<Option<PathBuf>> {
    let Some(dir) = perf_dir() else {
        return Ok(None);
    };
    std::fs::create_dir_all(&dir)?;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0) as f64
        / 1000.0;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = Json::Obj(vec![
        ("type".to_string(), Json::str("perf")),
        ("ts_unix".to_string(), Json::Num(ts)),
        ("bench".to_string(), Json::str(&record.bench)),
        ("git".to_string(), Json::str(git_describe())),
        ("config".to_string(), Json::Obj(record.config.clone())),
        ("median_ns".to_string(), Json::Num(record.median_ns)),
        ("p90_ns".to_string(), Json::Num(record.p90_ns)),
        (
            "peak_bytes".to_string(),
            record.peak_bytes.map_or(Json::Null, |b| Json::Num(b as f64)),
        ),
        ("cores".to_string(), Json::Num(cores as f64)),
    ]);
    let path = dir.join(PERF_FILE);
    let mut f = std::fs::OpenOptions::new().append(true).create(true).open(&path)?;
    // One write call per record keeps concurrent appends line-atomic on
    // POSIX (O_APPEND).
    f.write_all(format!("{doc}\n").as_bytes())?;
    f.flush()?;
    crate::debug!("perf ledger: recorded {} ({})", record.bench, fmt_duration(record.median_ns as u64));
    Ok(Some(path))
}

// ---------------------------------------------------------------------------
// Read side
// ---------------------------------------------------------------------------

/// One parsed perf record.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Unix timestamp (seconds).
    pub ts_unix: f64,
    /// `git describe` at record time.
    pub git: String,
    /// Bench id, e.g. `training_step/serial`.
    pub bench: String,
    /// Config pairs, stringified.
    pub config: Vec<(String, String)>,
    /// Median wall time.
    pub median_ns: f64,
    /// 90th-percentile wall time.
    pub p90_ns: f64,
    /// Peak heap bytes, when the bench profiled allocations.
    pub peak_bytes: Option<f64>,
    /// Core count of the recording machine.
    pub cores: usize,
}

fn parse_entry(doc: &Json) -> Option<PerfEntry> {
    if doc.get("type")?.as_str()? != "perf" {
        return None;
    }
    let config = match doc.get("config") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| {
                let val = match v {
                    Json::Str(s) => s.clone(),
                    other => other.to_string(),
                };
                (k.clone(), val)
            })
            .collect(),
        _ => Vec::new(),
    };
    Some(PerfEntry {
        ts_unix: doc.get("ts_unix").and_then(Json::as_f64).unwrap_or(0.0),
        git: doc
            .get("git")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        bench: doc.get("bench")?.as_str()?.to_string(),
        config,
        median_ns: doc.get("median_ns").and_then(Json::as_f64)?,
        p90_ns: doc.get("p90_ns").and_then(Json::as_f64).unwrap_or(f64::NAN),
        peak_bytes: doc.get("peak_bytes").and_then(Json::as_f64),
        cores: doc.get("cores").and_then(Json::as_f64).unwrap_or(1.0) as usize,
    })
}

/// A loaded perf history.
#[derive(Debug, Clone)]
pub struct PerfLedger {
    /// The directory the history was read from.
    pub dir: PathBuf,
    /// Records in file (chronological append) order.
    pub entries: Vec<PerfEntry>,
    /// Non-fatal parse warnings (e.g. a torn final line).
    pub warnings: Vec<String>,
}

impl PerfLedger {
    /// Reads `<dir>/perf.jsonl`. A torn final line (a crashed writer)
    /// becomes a warning; corruption anywhere else is an error, as is a
    /// missing or empty file.
    pub fn load(dir: &Path) -> Result<PerfLedger, String> {
        let path = dir.join(PERF_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "cannot read {}: {e} (is the perf ledger enabled? set PLATEAU_PERF or run a bench bin with it)",
                path.display()
            )
        })?;
        let mut entries = Vec::new();
        let mut warnings = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Json::parse(line) {
                Ok(doc) => {
                    if let Some(e) = parse_entry(&doc) {
                        entries.push(e);
                    }
                }
                Err(e) if i + 1 == lines.len() => {
                    warnings.push(format!("line {}: torn final record ignored ({e})", i + 1));
                }
                Err(e) => return Err(format!("{}:{}: {e}", path.display(), i + 1)),
            }
        }
        if entries.is_empty() {
            return Err(format!("{}: no perf records", path.display()));
        }
        Ok(PerfLedger {
            dir: dir.to_path_buf(),
            entries,
            warnings,
        })
    }

    /// Unique bench ids, sorted.
    pub fn benches(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.iter().map(|e| e.bench.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// The history of one bench, in append order.
    pub fn history(&self, bench: &str) -> Vec<&PerfEntry> {
        self.entries.iter().filter(|e| e.bench == bench).collect()
    }

    /// Renders the `obs perf list` table.
    pub fn render_list(&self) -> String {
        let mut out = format!(
            "# perf ledger {} — {} record(s), {} bench(es)\n",
            self.dir.display(),
            self.entries.len(),
            self.benches().len()
        );
        out.push_str(&format!(
            "{:<32} {:>12} {:>12} {:>10} {:>6}  {}\n",
            "bench", "median", "p90", "peak", "cores", "git"
        ));
        for e in &self.entries {
            let peak = e
                .peak_bytes
                .map_or_else(|| "-".to_string(), |b| fmt_bytes(b as u64));
            let p90 = if e.p90_ns.is_finite() {
                fmt_duration(e.p90_ns as u64)
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "{:<32} {:>12} {:>12} {:>10} {:>6}  {}\n",
                e.bench,
                fmt_duration(e.median_ns as u64),
                p90,
                peak,
                e.cores,
                e.git
            ));
        }
        out
    }
}

fn median_of(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Trend summary for one bench.
#[derive(Debug, Clone)]
pub struct BenchTrend {
    /// Bench id.
    pub bench: String,
    /// Number of recorded runs.
    pub runs: usize,
    /// Median of the latest record.
    pub latest_ns: f64,
    /// Mean of the recorded medians.
    pub mean_ns: f64,
    /// OLS fit of median vs run index, when ≥ 2 runs exist.
    pub fit: Option<LineFit>,
}

impl BenchTrend {
    /// Fitted slope as a percentage of the mean per recorded run
    /// (positive = getting slower).
    pub fn pct_per_run(&self) -> Option<f64> {
        let fit = self.fit.as_ref()?;
        if self.mean_ns > 0.0 {
            Some(100.0 * fit.slope / self.mean_ns)
        } else {
            None
        }
    }
}

/// Per-bench trend fits over the recorded history. `filter` restricts to
/// bench ids starting with the given prefix.
pub fn trends(ledger: &PerfLedger, filter: Option<&str>) -> Vec<BenchTrend> {
    ledger
        .benches()
        .into_iter()
        .filter(|b| filter.is_none_or(|f| b.starts_with(f)))
        .map(|bench| {
            let medians: Vec<f64> = ledger.history(&bench).iter().map(|e| e.median_ns).collect();
            let xs: Vec<f64> = (0..medians.len()).map(|i| i as f64).collect();
            let mean = medians.iter().sum::<f64>() / medians.len() as f64;
            BenchTrend {
                bench,
                runs: medians.len(),
                latest_ns: *medians.last().expect("history is non-empty"),
                mean_ns: mean,
                fit: fit_line(&xs, &medians).ok(),
            }
        })
        .collect()
}

/// Renders the `obs perf trend` table.
pub fn render_trend(trends: &[BenchTrend]) -> String {
    let mut out = format!(
        "{:<32} {:>5} {:>12} {:>12} {:>14} {:>8}\n",
        "bench", "runs", "latest", "mean", "slope/run", "r2"
    );
    for t in trends {
        let (slope, r2) = match (&t.fit, t.pct_per_run()) {
            (Some(fit), Some(pct)) => (format!("{pct:+.2}%"), format!("{:.3}", fit.r_squared)),
            _ => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:<32} {:>5} {:>12} {:>12} {:>14} {:>8}\n",
            t.bench,
            t.runs,
            fmt_duration(t.latest_ns as u64),
            fmt_duration(t.mean_ns as u64),
            slope,
            r2
        ));
    }
    out
}

/// A standalone SVG of every (filtered) bench's median history in
/// milliseconds, one curve per bench, via the shared series plotter.
pub fn trend_svg(ledger: &PerfLedger, filter: Option<&str>) -> String {
    let curves: Vec<(String, Vec<(f64, f64)>)> = ledger
        .benches()
        .into_iter()
        .filter(|b| filter.is_none_or(|f| b.starts_with(f)))
        .map(|bench| {
            let pts = ledger
                .history(&bench)
                .iter()
                .enumerate()
                .map(|(i, e)| (i as f64, e.median_ns / 1e6))
                .collect();
            (bench, pts)
        })
        .collect();
    crate::runs::series_svg(
        &format!("perf trend (median ms per recorded run) — {}", ledger.dir.display()),
        &curves,
    )
}

/// One detected regression.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Bench id.
    pub bench: String,
    /// `"median"` or `"peak_bytes"`.
    pub kind: &'static str,
    /// Median of the prior history.
    pub baseline: f64,
    /// The latest record's value.
    pub latest: f64,
    /// `latest / baseline`.
    pub ratio: f64,
}

/// The `obs perf regress` verdict.
#[derive(Debug, Clone)]
pub struct RegressReport {
    /// Benches with enough history to check.
    pub checked: Vec<String>,
    /// Benches skipped for insufficient history (< 2 records).
    pub skipped: Vec<String>,
    /// Detected regressions.
    pub regressions: Vec<Regression>,
}

impl RegressReport {
    /// Renders the human-readable verdict.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = format!(
            "# perf regress: {} bench(es) checked against history, threshold +{:.0}%\n",
            self.checked.len(),
            100.0 * threshold
        );
        for b in &self.skipped {
            out.push_str(&format!("# {b}: skipped (needs ≥ 2 recorded runs)\n"));
        }
        for r in &self.regressions {
            let (base, latest) = if r.kind == "median" {
                (fmt_duration(r.baseline as u64), fmt_duration(r.latest as u64))
            } else {
                (fmt_bytes(r.baseline as u64), fmt_bytes(r.latest as u64))
            };
            out.push_str(&format!(
                "REGRESSION {} ({}): {} -> {} (x{:.2})\n",
                r.bench, r.kind, base, latest, r.ratio
            ));
        }
        if self.regressions.is_empty() {
            out.push_str("# no regressions\n");
        }
        out
    }
}

/// Compares each bench's latest record against the median of its prior
/// history. A bench regresses when `latest > baseline * (1 + threshold)`
/// — for wall time always, and for peak bytes when both the latest record
/// and some prior record carry a footprint.
pub fn regress(ledger: &PerfLedger, threshold: f64, filter: Option<&str>) -> RegressReport {
    let mut report = RegressReport {
        checked: Vec::new(),
        skipped: Vec::new(),
        regressions: Vec::new(),
    };
    for bench in ledger.benches() {
        if !filter.is_none_or(|f| bench.starts_with(f)) {
            continue;
        }
        let history = ledger.history(&bench);
        if history.len() < 2 {
            report.skipped.push(bench);
            continue;
        }
        let (prior, latest) = history.split_at(history.len() - 1);
        let latest = latest[0];
        let baseline = median_of(&prior.iter().map(|e| e.median_ns).collect::<Vec<_>>());
        if baseline > 0.0 && latest.median_ns > baseline * (1.0 + threshold) {
            report.regressions.push(Regression {
                bench: bench.clone(),
                kind: "median",
                baseline,
                latest: latest.median_ns,
                ratio: latest.median_ns / baseline,
            });
        }
        if let Some(peak) = latest.peak_bytes {
            let prior_peaks: Vec<f64> = prior.iter().filter_map(|e| e.peak_bytes).collect();
            if !prior_peaks.is_empty() {
                let base_peak = median_of(&prior_peaks);
                if base_peak > 0.0 && peak > base_peak * (1.0 + threshold) {
                    report.regressions.push(Regression {
                        bench: bench.clone(),
                        kind: "peak_bytes",
                        baseline: base_peak,
                        latest: peak,
                        ratio: peak / base_peak,
                    });
                }
            }
        }
        report.checked.push(bench);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("plateau_perf_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn disabled_by_default_and_env_grammar_parses() {
        let _guard = test_lock();
        std::env::remove_var("PLATEAU_PERF");
        reset_perf();
        assert!(!perf_enabled());
        assert_eq!(record_perf(&PerfRecord::new("x", 1.0, 2.0)).unwrap(), None);
        std::env::set_var("PLATEAU_PERF", "1");
        reset_perf();
        assert_eq!(perf_dir(), Some(PathBuf::from(crate::ledger::DEFAULT_DIR)));
        std::env::set_var("PLATEAU_PERF", "/tmp/perfdir");
        reset_perf();
        assert_eq!(perf_dir(), Some(PathBuf::from("/tmp/perfdir")));
        std::env::set_var("PLATEAU_PERF", "off");
        reset_perf();
        assert_eq!(perf_dir(), None);
        std::env::remove_var("PLATEAU_PERF");
        reset_perf();
    }

    #[test]
    fn record_append_and_load_round_trip() {
        let _guard = test_lock();
        let dir = temp_dir("roundtrip");
        set_perf_dir(Some(&dir));
        let rec = PerfRecord::new("training_step/serial", 35e6, 37e6)
            .config("qubits", Json::from(10usize))
            .peak_bytes(1 << 20);
        record_perf(&rec).unwrap().expect("enabled");
        record_perf(&PerfRecord::new("training_step/fused", 14e6, 15e6))
            .unwrap()
            .expect("enabled");
        set_perf_dir(None);
        reset_perf();

        let ledger = PerfLedger::load(&dir).expect("load");
        assert_eq!(ledger.entries.len(), 2);
        assert_eq!(
            ledger.benches(),
            vec!["training_step/fused".to_string(), "training_step/serial".to_string()]
        );
        let serial = &ledger.entries[0];
        assert_eq!(serial.bench, "training_step/serial");
        assert_eq!(serial.median_ns, 35e6);
        assert_eq!(serial.p90_ns, 37e6);
        assert_eq!(serial.peak_bytes, Some((1u64 << 20) as f64));
        assert!(serial.cores >= 1);
        assert_eq!(
            serial.config,
            vec![("qubits".to_string(), "10".to_string())]
        );
        assert!(ledger.entries[1].peak_bytes.is_none());
        let list = ledger.render_list();
        assert!(list.contains("training_step/serial"), "{list}");
        assert!(list.contains("1.0MiB"), "{list}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn synthetic(dir: &Path, bench: &str, medians: &[f64]) {
        std::fs::create_dir_all(dir).unwrap();
        let mut text = String::new();
        for (i, m) in medians.iter().enumerate() {
            text.push_str(&format!(
                "{{\"type\":\"perf\",\"ts_unix\":{},\"bench\":\"{bench}\",\"git\":\"abc\",\"config\":{{}},\"median_ns\":{m},\"p90_ns\":{},\"peak_bytes\":null,\"cores\":4}}\n",
                1000 + i,
                m * 1.1
            ));
        }
        let path = dir.join(PERF_FILE);
        let prior = std::fs::read_to_string(&path).unwrap_or_default();
        std::fs::write(&path, prior + &text).unwrap();
    }

    #[test]
    fn trend_fits_slope_over_history() {
        let dir = temp_dir("trend");
        synthetic(&dir, "bench/a", &[100.0, 110.0, 120.0, 130.0]);
        let ledger = PerfLedger::load(&dir).unwrap();
        let ts = trends(&ledger, None);
        assert_eq!(ts.len(), 1);
        let t = &ts[0];
        assert_eq!(t.runs, 4);
        assert_eq!(t.latest_ns, 130.0);
        let fit = t.fit.as_ref().expect("fit");
        assert!((fit.slope - 10.0).abs() < 1e-9, "slope {}", fit.slope);
        assert!(t.pct_per_run().unwrap() > 8.0);
        let svg = trend_svg(&ledger, None);
        assert!(svg.contains("</svg>"));
        assert!(svg.contains("bench/a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn regress_flags_injected_slowdown_and_passes_replayed_history() {
        let dir = temp_dir("regress");
        synthetic(&dir, "bench/slow", &[100.0, 102.0, 98.0, 1000.0]);
        synthetic(&dir, "bench/steady", &[50.0, 51.0, 49.0, 50.0]);
        synthetic(&dir, "bench/new", &[10.0]);
        let ledger = PerfLedger::load(&dir).unwrap();
        let report = regress(&ledger, 0.5, None);
        assert_eq!(report.skipped, vec!["bench/new".to_string()]);
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.bench, "bench/slow");
        assert_eq!(r.kind, "median");
        assert!(r.ratio > 9.0, "ratio {}", r.ratio);
        let rendered = report.render(0.5);
        assert!(rendered.contains("REGRESSION bench/slow"), "{rendered}");

        // Filtering to the steady bench passes clean.
        let clean = regress(&ledger, 0.5, Some("bench/steady"));
        assert!(clean.regressions.is_empty());
        assert_eq!(clean.checked, vec!["bench/steady".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_a_warning_not_an_error() {
        let dir = temp_dir("torn");
        synthetic(&dir, "bench/t", &[100.0, 101.0]);
        let path = dir.join(PERF_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"perf\",\"bench\":\"bench/t\",\"median_n");
        std::fs::write(&path, text).unwrap();
        let ledger = PerfLedger::load(&dir).unwrap();
        assert_eq!(ledger.entries.len(), 2);
        assert_eq!(ledger.warnings.len(), 1);
        assert!(ledger.warnings[0].contains("torn"), "{:?}", ledger.warnings);
        std::fs::remove_dir_all(&dir).ok();
    }
}
