//! The experiment ledger: an append-only registry of runs.
//!
//! Every instrumented experiment (training, VQE, classification, the
//! variance scan) appends exactly one `{"type":"run",...}` record to
//! `<dir>/ledger.jsonl` describing what ran — command, config, seed,
//! tracked `PLATEAU_*` environment, git revision, final metrics — plus a
//! pointer to the run's [`TimeSeries`](crate::timeseries::TimeSeries)
//! JSONL under `<dir>/runs/<id>.jsonl`. The ledger file is only ever
//! opened in append mode (never truncated — unlike the span sink), so
//! records accumulate across processes and `plateau obs runs
//! list|show|compare` can race two initializers recorded days apart.
//!
//! Enablement mirrors the rest of the stack: the `PLATEAU_LEDGER`
//! environment variable (`1`/`true`/`on` → the default `target/obs`
//! directory, any other non-empty value → that directory, unset/`0` →
//! disabled) read lazily on first use, with the programmatic
//! [`set_ledger_dir`] always winning. Disabled is the default, and the
//! disabled path is one mutex-guarded `Option` check per *run* (never
//! per iteration), so nothing in a hot loop ever sees the ledger.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::manifest::{git_describe, TRACKED_ENV};
use crate::timeseries::TimeSeries;

/// `None` = not yet initialized from the environment;
/// `Some(None)` = disabled; `Some(Some(dir))` = enabled.
static DIR: Mutex<Option<Option<PathBuf>>> = Mutex::new(None);

/// Per-process sequence number, disambiguating runs within one millisecond.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// The directory ledger records default to when `PLATEAU_LEDGER` is a
/// bare "on" switch.
pub const DEFAULT_DIR: &str = "target/obs";

fn dir_from_env() -> Option<PathBuf> {
    let raw = std::env::var("PLATEAU_LEDGER").ok()?;
    match raw.trim() {
        "" | "0" | "false" | "off" | "no" => None,
        "1" | "true" | "on" | "yes" => Some(PathBuf::from(DEFAULT_DIR)),
        dir => Some(PathBuf::from(dir)),
    }
}

/// The directory the ledger writes to, or `None` when disabled.
pub fn ledger_dir() -> Option<PathBuf> {
    let mut state = DIR.lock().unwrap_or_else(|p| p.into_inner());
    state.get_or_insert_with(dir_from_env).clone()
}

/// Enables the ledger at `dir` (or disables it with `None`). Wins over
/// `PLATEAU_LEDGER`.
pub fn set_ledger_dir(dir: Option<&Path>) {
    let mut state = DIR.lock().unwrap_or_else(|p| p.into_inner());
    *state = Some(dir.map(PathBuf::from));
}

/// Forgets any programmatic override so the next query re-reads
/// `PLATEAU_LEDGER` (test hook).
pub fn reset_ledger() {
    let mut state = DIR.lock().unwrap_or_else(|p| p.into_inner());
    *state = None;
}

/// Whether [`record_run`] would write anything.
pub fn ledger_enabled() -> bool {
    ledger_dir().is_some()
}

/// Everything a run contributes to its ledger record. Built by the
/// experiment drivers (training loop, VQE solver, classifier, variance
/// scan); the ledger adds the id, timestamp, git revision, and tracked
/// environment itself.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    command: String,
    config: Vec<(String, Json)>,
    seed: Option<u64>,
    metrics: Vec<(String, f64)>,
}

impl RunRecord {
    /// A record for the named experiment kind (e.g. `"train"`, `"vqe"`).
    pub fn new(command: &str) -> RunRecord {
        RunRecord {
            command: command.to_string(),
            config: Vec::new(),
            seed: None,
            metrics: Vec::new(),
        }
    }

    /// Adds one config pair (builder style).
    pub fn config(mut self, key: &str, value: Json) -> RunRecord {
        self.config.push((key.to_string(), value));
        self
    }

    /// Stamps the RNG seed.
    pub fn seed(mut self, seed: u64) -> RunRecord {
        self.seed = Some(seed);
        self
    }

    /// Adds one final metric (builder style). Non-finite values are kept
    /// and serialize as `null`.
    pub fn metric(mut self, name: &str, value: f64) -> RunRecord {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// The experiment kind this record describes.
    pub fn command_name(&self) -> &str {
        &self.command
    }
}

fn now_millis() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

fn next_run_id() -> String {
    // Zero-padded millisecond timestamp first: ids sort chronologically;
    // pid + per-process sequence keep concurrent writers distinct.
    format!(
        "{:013}-{:05}-{:03}",
        now_millis(),
        std::process::id() % 100_000,
        SEQ.fetch_add(1, Relaxed) % 1000
    )
}

fn env_json() -> Json {
    Json::Obj(
        TRACKED_ENV
            .iter()
            .map(|&k| {
                let v = std::env::var(k).map_or(Json::Null, Json::str);
                (k.to_string(), v)
            })
            .collect(),
    )
}

/// Appends one run record to `<dir>/ledger.jsonl`, writing the time
/// series (when given) to `<dir>/runs/<id>.jsonl` first so the ledger
/// record never points at a missing file. Returns the run id, or
/// `Ok(None)` when the ledger is disabled.
pub fn record_run(record: &RunRecord, series: Option<&TimeSeries>) -> io::Result<Option<String>> {
    let Some(dir) = ledger_dir() else {
        return Ok(None);
    };
    std::fs::create_dir_all(&dir)?;
    let id = next_run_id();

    let series_rel = match series {
        Some(s) => {
            let rel = format!("runs/{id}.jsonl");
            s.write_jsonl(&dir.join(&rel))?;
            Json::str(&rel)
        }
        None => Json::Null,
    };

    let ts = now_millis() as f64 / 1000.0;
    let doc = Json::Obj(vec![
        ("type".to_string(), Json::str("run")),
        ("id".to_string(), Json::str(&id)),
        ("ts_unix".to_string(), Json::Num(ts)),
        ("command".to_string(), Json::str(&record.command)),
        ("git".to_string(), Json::str(git_describe())),
        (
            "seed".to_string(),
            record.seed.map_or(Json::Null, |s| Json::Num(s as f64)),
        ),
        ("config".to_string(), Json::Obj(record.config.clone())),
        ("env".to_string(), env_json()),
        (
            "metrics".to_string(),
            Json::Obj(
                record
                    .metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ),
        ("series".to_string(), series_rel),
    ]);

    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(dir.join("ledger.jsonl"))?;
    // One write call per record keeps concurrent appends line-atomic on
    // POSIX (O_APPEND).
    f.write_all(format!("{doc}\n").as_bytes())?;
    f.flush()?;
    crate::debug!("ledger: recorded run {id} ({})", record.command);
    Ok(Some(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "plateau_ledger_{tag}_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn disabled_by_default_and_records_nothing() {
        let _guard = test_lock();
        std::env::remove_var("PLATEAU_LEDGER");
        reset_ledger();
        assert!(!ledger_enabled());
        let id = record_run(&RunRecord::new("train"), None).unwrap();
        assert_eq!(id, None);
    }

    #[test]
    fn env_switch_and_explicit_dir_parse() {
        let _guard = test_lock();
        std::env::set_var("PLATEAU_LEDGER", "1");
        reset_ledger();
        assert_eq!(ledger_dir(), Some(PathBuf::from(DEFAULT_DIR)));
        std::env::set_var("PLATEAU_LEDGER", "/tmp/somewhere");
        reset_ledger();
        assert_eq!(ledger_dir(), Some(PathBuf::from("/tmp/somewhere")));
        std::env::set_var("PLATEAU_LEDGER", "off");
        reset_ledger();
        assert_eq!(ledger_dir(), None);
        std::env::remove_var("PLATEAU_LEDGER");
        reset_ledger();
    }

    #[test]
    fn record_run_appends_and_points_at_series() {
        let _guard = test_lock();
        let dir = temp_dir("append");
        set_ledger_dir(Some(&dir));

        let mut series = TimeSeries::new(vec!["loss"], 8);
        series.push(0.0, &[1.0]);
        series.push(1.0, &[0.5]);
        let rec = RunRecord::new("train")
            .config("qubits", Json::from(4usize))
            .seed(7)
            .metric("final_loss", 0.5);
        let id1 = record_run(&rec, Some(&series)).unwrap().unwrap();
        let id2 = record_run(&RunRecord::new("vqe"), None).unwrap().unwrap();
        assert_ne!(id1, id2);

        let text = std::fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "append-only: one line per run");
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("run"));
        assert_eq!(first.get("id").unwrap().as_str(), Some(id1.as_str()));
        assert_eq!(first.get("command").unwrap().as_str(), Some("train"));
        assert_eq!(first.get("seed").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            first.get("config").unwrap().get("qubits").unwrap().as_f64(),
            Some(4.0)
        );
        assert_eq!(
            first.get("metrics").unwrap().get("final_loss").unwrap().as_f64(),
            Some(0.5)
        );
        // The env capture includes the fusion flag (tracked since PR 7).
        assert!(first.get("env").unwrap().get("PLATEAU_SIM_FUSE").is_some());

        // The series pointer resolves and parses back.
        let rel = first.get("series").unwrap().as_str().unwrap().to_string();
        let back = TimeSeries::read_jsonl(&dir.join(&rel)).unwrap();
        assert_eq!(back.len(), 2);
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("series"), Some(&Json::Null));

        set_ledger_dir(None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_ids_sort_chronologically_within_a_process() {
        let a = next_run_id();
        let b = next_run_id();
        assert!(b > a, "{b} !> {a}");
    }
}
