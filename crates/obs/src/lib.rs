//! `plateau-obs` — zero-dependency observability for the plateau workspace.
//!
//! Three pillars, all hermetic (std-only, like the rest of the workspace):
//!
//! 1. **Metrics** ([`metrics`]): a global registry of counters, gauges, and
//!    log-scale histograms. Interning happens once per call site via the
//!    [`counter!`]/[`gauge!`]/[`histogram!`] macros; every update is a
//!    relaxed-atomic branch + add, and with metrics disabled it is a single
//!    atomic load + branch, so instrumented hot paths cost (near) nothing
//!    when observability is off.
//! 2. **Spans and logs** ([`span`]): `span!("variance_scan", q = 8)` times a
//!    scope, logging open/close to stderr at `debug` level, recording a
//!    `span.<name>_ns` histogram when metrics are on, and appending a JSONL
//!    record when a metrics file is configured. `error!`…`trace!` macros are
//!    gated by the global level.
//! 3. **Run manifests** ([`manifest`]): stamp an invocation with its
//!    command, config, seed, tracked environment, core count, and
//!    `git describe`, and close the run with a final metrics snapshot — so
//!    every JSONL file is self-describing.
//!
//! On top of the write side sits the **read side** — the trace profiler:
//!
//! 4. **Analysis** ([`analyze`]): stream-parse a JSONL trace, rebuild the
//!    span forest from span/parent ids, and aggregate per span name
//!    (count, total and self wall time, min/mean and exact percentiles).
//! 5. **Flamegraphs** ([`flame`]): collapsed-stack export and a
//!    self-contained SVG flamegraph writer.
//! 6. **Regression diff** ([`diff`]): compare two traces, or a trace
//!    against a committed baseline, per span name with a relative
//!    threshold — the `plateau obs diff` CI gate.
//!
//! PR 7 adds the **experiment ledger** — training *dynamics*, not just
//! performance:
//!
//! 7. **Time series** ([`timeseries`]): a bounded fixed-column recorder
//!    (ring with deterministic stride-doubling decimation) for
//!    per-iteration loss / gradient norm / per-layer gradient variance.
//! 8. **Ledger** ([`ledger`]): an append-only run registry
//!    (`target/obs/ledger.jsonl` by default): one record per experiment
//!    with config, seed, tracked env, git rev, final metrics, and a
//!    pointer to the run's time-series JSONL.
//! 9. **Runs** ([`runs`]): the ledger's read side — list/show/compare
//!    with per-column decay fits and zero-dep SVG line plots, backing
//!    `plateau obs runs list|show|compare`.
//!
//! PR 8 makes **memory** a first-class observable and gives performance a
//! persistent history:
//!
//! 10. **Allocation profiler** ([`alloc`]): a counting wrapper around the
//!     system allocator (bytes/count/live/peak, relaxed atomics, a single
//!     load on the disabled path). When profiling is on, every span record
//!     additionally carries `alloc_bytes`/`alloc_count`/`peak_bytes`
//!     deltas, and [`analyze`]/[`flame`] can rank by memory as well as
//!     time (`--by alloc|peak|time`).
//! 11. **Perf ledger** ([`perf`]): an append-only `target/obs/perf.jsonl`
//!     of bench results (git rev, bench id, config, median/p90, peak
//!     bytes, cores) with a read side — `plateau obs perf
//!     list|trend|regress`: per-bench trend fits, SVG trend plots, and a
//!     regression gate against the recorded history.
//!
//! # Configuration
//!
//! | Env var               | Effect                                         |
//! |-----------------------|------------------------------------------------|
//! | `PLATEAU_LOG`         | stderr level: `off`/`error`/`warn`/`info`/`debug`/`trace` (default `warn`) |
//! | `PLATEAU_METRICS`     | `1`/`true`/`on` enables the metrics registry   |
//! | `PLATEAU_METRICS_OUT` | path for the JSONL event stream (bench bins; the CLI uses `--metrics-out`) |
//! | `PLATEAU_LEDGER`      | `1`/`true`/`on` → ledger at `target/obs`; any other value → that directory |
//! | `PLATEAU_ALLOC_PROFILE` | `1`/`true`/`on` enables allocation profiling (needs a [`alloc::CountingAllocator`] installed) |
//! | `PLATEAU_PERF`        | `1`/`true`/`on` → perf ledger at `target/obs`; any other value → that directory |
//!
//! Programmatic overrides ([`set_log_level`], [`set_metrics_enabled`],
//! [`init`], [`set_ledger_dir`], [`alloc::set_profiling`],
//! [`perf::set_perf_dir`]) always win over the environment.

pub mod alloc;
pub mod analyze;
pub mod diff;
pub mod flame;
pub mod json;
pub mod ledger;
pub mod manifest;
pub mod metrics;
pub mod perf;
pub mod runs;
pub mod span;
pub mod timeseries;

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

pub use ledger::{ledger_enabled, record_run, reset_ledger, set_ledger_dir, RunRecord};
pub use manifest::{emit_manifest, emit_metrics_snapshot, finish_run, git_describe};
pub use metrics::{snapshot, MetricsSnapshot};
pub use span::{Field, Span, Value};
pub use timeseries::TimeSeries;

/// Log verbosity, ordered from silent to most verbose. A message is emitted
/// when its level is `<=` the configured level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Suppress everything, including errors.
    Off = 0,
    /// Unrecoverable failures.
    Error = 1,
    /// Suspicious conditions (e.g. a barren-plateau alarm). The default.
    Warn = 2,
    /// Per-stage progress (one line per variance cell / training figure).
    Info = 3,
    /// Span open/close lines and manifests.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Parses a level name, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "silent" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: u8 = 0xFF;

static LOG_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// Metrics enablement: `UNINIT` until first query, then 0 = off, 1 = on.
static METRICS: AtomicU8 = AtomicU8::new(UNINIT);

#[cold]
fn init_log_level_from_env() -> u8 {
    let level = std::env::var("PLATEAU_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Level::Warn);
    // A racing `set_log_level` may land between the load and this store;
    // last writer wins, which is fine for a verbosity knob.
    LOG_LEVEL.store(level as u8, Relaxed);
    level as u8
}

#[cold]
fn init_metrics_from_env() -> u8 {
    let on = std::env::var("PLATEAU_METRICS")
        .map(|s| matches!(s.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes"))
        .unwrap_or(false);
    let v = u8::from(on);
    METRICS.store(v, Relaxed);
    v
}

/// The currently configured stderr log level (lazily read from
/// `PLATEAU_LOG` on first use; default [`Level::Warn`]).
pub fn current_level() -> Level {
    let v = LOG_LEVEL.load(Relaxed);
    let v = if v == UNINIT { init_log_level_from_env() } else { v };
    Level::from_u8(v)
}

/// Whether a message at `level` would be emitted to stderr. This is the
/// fast-path check every log macro compiles down to: one relaxed atomic
/// load and a comparison.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    level != Level::Off && level as u8 <= current_level() as u8
}

/// Overrides the stderr log level (wins over `PLATEAU_LOG`).
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Relaxed);
}

/// Whether the metrics registry is recording. When false, every
/// counter/gauge/histogram update is a load + branch and the final
/// snapshot is empty.
#[inline]
pub fn metrics_enabled() -> bool {
    match METRICS.load(Relaxed) {
        0 => false,
        UNINIT => init_metrics_from_env() != 0,
        _ => true,
    }
}

/// Turns the metrics registry on or off (wins over `PLATEAU_METRICS`).
pub fn set_metrics_enabled(on: bool) {
    METRICS.store(u8::from(on), Relaxed);
}

/// One-call setup for binaries: apply an explicit level (e.g. from a
/// `--log` flag) and/or open a JSONL metrics sink (e.g. `--metrics-out`).
/// Opening a sink implies enabling the metrics registry.
pub fn init(log: Option<Level>, metrics_out: Option<&std::path::Path>) -> std::io::Result<()> {
    if let Some(level) = log {
        set_log_level(level);
    }
    if let Some(path) = metrics_out {
        set_metrics_enabled(true);
        span::set_jsonl_path(path)?;
    }
    Ok(())
}

/// Interns a [`metrics::Counter`] once per call site and returns
/// `&'static Counter`.
///
/// ```
/// plateau_obs::set_metrics_enabled(true);
/// plateau_obs::counter!("sim.gate.rotation").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Interns a [`metrics::Gauge`] once per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Interns a [`metrics::Histogram`] once per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// Opens a timed span: `let _s = span!("variance_cell", strategy = name, q = 4);`
///
/// Field expressions are only evaluated when some subscriber is listening
/// (stderr at `debug`, a JSONL sink, or the metrics registry); a fully
/// disabled span is two atomic loads and no allocation.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::span::Span::enter_with($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::Span::enter_with($name, || {
            ::std::vec![$($crate::span::Field::new(stringify!($key), $value)),+]
        })
    };
}

/// Emits a structured event to stderr (level-gated) and the JSONL sink:
/// `event!(Level::Warn, "barren_plateau_alarm", iteration = it, grad_norm = g)`.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::span::emit_event($level, $name, || {
            ::std::vec![$($crate::span::Field::new(stringify!($key), $value)),*]
        })
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! log_at {
    ($level:expr, $($arg:tt)*) => {
        if $crate::level_enabled($level) {
            $crate::span::log($level, &::std::format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Error, $($arg)*) };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Warn, $($arg)*) };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Info, $($arg)*) };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Debug, $($arg)*) };
}

/// Logs at [`Level::Trace`] with `format!` syntax.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Trace, $($arg)*) };
}

/// Serializes access to the process-global observability state from tests
/// (the registry, level, and sinks are shared across the whole test binary).
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse(" DEBUG "), Some(Level::Debug));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn level_ordering_matches_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn level_filtering_respects_configured_level() {
        let _guard = test_lock();
        let prior = current_level();
        set_log_level(Level::Info);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        assert!(!level_enabled(Level::Trace));
        set_log_level(Level::Off);
        assert!(!level_enabled(Level::Error));
        assert!(!level_enabled(Level::Off), "Off is never emitted");
        set_log_level(prior);
    }

    #[test]
    fn metrics_toggle_round_trips() {
        let _guard = test_lock();
        let prior = metrics_enabled();
        set_metrics_enabled(true);
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        set_metrics_enabled(prior);
    }
}
