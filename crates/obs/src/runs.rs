//! Read side of the experiment ledger: load `<dir>/ledger.jsonl`, resolve
//! run ids, compute run-to-run metric deltas and per-column gradient-decay
//! slopes, and render zero-dependency SVG line plots (same self-contained,
//! no-JS style as [`flame`](crate::flame)) so two initializers' variance
//! or gradient-norm curves can be compared straight from the CLI.
//!
//! Like [`analyze`](crate::analyze), parsing tolerates a torn final line
//! (a run killed mid-append) by downgrading it to a warning; corruption
//! anywhere else is a hard error naming the line.

use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::timeseries::TimeSeries;

/// One parsed `{"type":"run",...}` ledger record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEntry {
    pub id: String,
    pub ts_unix: f64,
    pub command: String,
    pub git: String,
    pub seed: Option<u64>,
    /// Config pairs, stringified for display.
    pub config: Vec<(String, String)>,
    pub metrics: Vec<(String, f64)>,
    /// Path of the run's time series, relative to the ledger directory.
    pub series: Option<String>,
    /// The ledger directory this entry was loaded from.
    pub dir: PathBuf,
}

impl RunEntry {
    /// One final metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Loads the run's time series, if the record points at one.
    pub fn load_series(&self) -> Option<Result<TimeSeries, String>> {
        self.series
            .as_ref()
            .map(|rel| TimeSeries::read_jsonl(&self.dir.join(rel)))
    }
}

fn stringify(j: &Json) -> String {
    match j {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

fn parse_entry(rec: &Json, dir: &Path) -> Option<RunEntry> {
    if rec.get("type").and_then(Json::as_str) != Some("run") {
        return None;
    }
    Some(RunEntry {
        id: rec.get("id")?.as_str()?.to_string(),
        ts_unix: rec.get("ts_unix").and_then(Json::as_f64).unwrap_or(0.0),
        command: rec.get("command")?.as_str()?.to_string(),
        git: rec
            .get("git")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        seed: rec.get("seed").and_then(Json::as_f64).map(|s| s as u64),
        config: rec
            .get("config")
            .and_then(Json::as_obj)
            .map(|pairs| pairs.iter().map(|(k, v)| (k.clone(), stringify(v))).collect())
            .unwrap_or_default(),
        metrics: rec
            .get("metrics")
            .and_then(Json::as_obj)
            .map(|pairs| {
                pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(f64::NAN)))
                    .collect()
            })
            .unwrap_or_default(),
        series: rec.get("series").and_then(Json::as_str).map(String::from),
        dir: dir.to_path_buf(),
    })
}

/// A loaded ledger: every run recorded under one directory, oldest first.
#[derive(Debug, Clone)]
pub struct Ledger {
    pub dir: PathBuf,
    pub runs: Vec<RunEntry>,
    pub warnings: Vec<String>,
}

impl Ledger {
    /// Reads `<dir>/ledger.jsonl`. A missing or empty ledger is an error;
    /// a torn final line (crash mid-append) is a warning.
    pub fn load(dir: &Path) -> Result<Ledger, String> {
        let path = dir.join("ledger.jsonl");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e} (is the ledger enabled? set PLATEAU_LEDGER or --ledger)", path.display()))?;
        let mut runs = Vec::new();
        let mut warnings = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Json::parse(line) {
                Ok(rec) => {
                    if let Some(entry) = parse_entry(&rec, dir) {
                        runs.push(entry);
                    }
                }
                Err(e) if i + 1 == lines.len() => {
                    warnings.push(format!("truncated final line skipped ({e})"));
                }
                Err(e) => return Err(format!("{}: line {}: {e}", path.display(), i + 1)),
            }
        }
        if runs.is_empty() {
            return Err(format!("{}: no run records", path.display()));
        }
        Ok(Ledger { dir: dir.to_path_buf(), runs, warnings })
    }

    /// Resolves a run by exact id or unique prefix.
    pub fn find(&self, id: &str) -> Result<&RunEntry, String> {
        if let Some(exact) = self.runs.iter().find(|r| r.id == id) {
            return Ok(exact);
        }
        let matches: Vec<&RunEntry> =
            self.runs.iter().filter(|r| r.id.starts_with(id)).collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(format!("no run with id {id:?} in {}", self.dir.display())),
            n => Err(format!("id prefix {id:?} is ambiguous ({n} matches)")),
        }
    }

    /// The most recent run (ledger records append chronologically).
    pub fn latest(&self) -> &RunEntry {
        self.runs.last().expect("Ledger::load rejects empty ledgers")
    }

    /// A table of every run, oldest first.
    pub fn render_list(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# ledger {} — {} run(s)\n",
            self.dir.display(),
            self.runs.len()
        ));
        out.push_str(&format!(
            "{:<24} {:<10} {:<12} {:>10} {:<6} key metrics\n",
            "id", "command", "git", "seed", "series"
        ));
        for r in &self.runs {
            let seed = r.seed.map_or(String::from("-"), |s| s.to_string());
            let metrics: Vec<String> = r
                .metrics
                .iter()
                .take(3)
                .map(|(k, v)| format!("{k}={v:.4e}"))
                .collect();
            out.push_str(&format!(
                "{:<24} {:<10} {:<12} {:>10} {:<6} {}\n",
                r.id,
                r.command,
                r.git,
                seed,
                if r.series.is_some() { "yes" } else { "-" },
                metrics.join(" ")
            ));
        }
        out
    }
}

/// OLS slope of `ln(y)` against `x` over the finite, strictly positive
/// points — the observed exponential decay rate of a curve. `None` with
/// fewer than 3 usable points or a degenerate x range.
pub fn log_slope(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| x.is_finite() && y.is_finite() && *y > 0.0)
        .map(|&(x, y)| (x, y.ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let mean_x = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let sxy: f64 = pts.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    Some(sxy / sxx)
}

/// The decay fit of one series column: `slope` is the log-linear rate
/// (negative = decaying), `None` when the column has too few positive
/// samples to fit.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDecay {
    pub column: String,
    pub slope: Option<f64>,
}

fn column_decays(series: &TimeSeries) -> Vec<ColumnDecay> {
    series
        .columns()
        .iter()
        .map(|c| ColumnDecay {
            column: c.clone(),
            slope: series.column(c).as_deref().and_then(log_slope),
        })
        .collect()
}

/// The difference of one final metric between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    pub name: String,
    pub a: f64,
    pub b: f64,
}

impl MetricDelta {
    /// Relative change from a to b, in percent (NaN when a is 0/NaN).
    pub fn percent(&self) -> f64 {
        100.0 * (self.b - self.a) / self.a.abs()
    }
}

/// The result of `plateau obs runs compare`: metric deltas over the
/// common final metrics plus per-column decay slopes of both series.
#[derive(Debug, Clone)]
pub struct RunComparison {
    pub a: RunEntry,
    pub b: RunEntry,
    pub metric_deltas: Vec<MetricDelta>,
    pub decay_a: Vec<ColumnDecay>,
    pub decay_b: Vec<ColumnDecay>,
}

impl RunComparison {
    /// Compares two runs, loading their series for decay fits (a missing
    /// or unreadable series contributes no decay rows).
    pub fn of(a: &RunEntry, b: &RunEntry) -> RunComparison {
        let decays = |r: &RunEntry| -> Vec<ColumnDecay> {
            match r.load_series() {
                Some(Ok(s)) => column_decays(&s),
                _ => Vec::new(),
            }
        };
        let metric_deltas = a
            .metrics
            .iter()
            .filter_map(|(name, va)| {
                b.metric(name).map(|vb| MetricDelta { name: name.clone(), a: *va, b: vb })
            })
            .collect();
        RunComparison {
            a: a.clone(),
            b: b.clone(),
            metric_deltas,
            decay_a: decays(a),
            decay_b: decays(b),
        }
    }

    /// The fitted decay slope of one column of run A's series.
    pub fn slope_a(&self, column: &str) -> Option<f64> {
        self.decay_a.iter().find(|d| d.column == column).and_then(|d| d.slope)
    }

    /// The fitted decay slope of one column of run B's series.
    pub fn slope_b(&self, column: &str) -> Option<f64> {
        self.decay_b.iter().find(|d| d.column == column).and_then(|d| d.slope)
    }

    /// The human-readable comparison report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# A: {} ({}, git {})\n", self.a.id, self.a.command, self.a.git));
        out.push_str(&format!("# B: {} ({}, git {})\n", self.b.id, self.b.command, self.b.git));
        out.push_str(&format!(
            "{:<24} {:>14} {:>14} {:>9}\n",
            "metric", "A", "B", "delta%"
        ));
        for d in &self.metric_deltas {
            out.push_str(&format!(
                "{:<24} {:>14.6e} {:>14.6e} {:>+9.1}\n",
                d.name,
                d.a,
                d.b,
                d.percent()
            ));
        }
        let fmt_decay = |tag: &str, decays: &[ColumnDecay], out: &mut String| {
            for d in decays {
                if let Some(slope) = d.slope {
                    out.push_str(&format!(
                        "decay {tag}:{:<20} log-slope {slope:+.4}\n",
                        d.column
                    ));
                }
            }
        };
        if !self.decay_a.is_empty() || !self.decay_b.is_empty() {
            out.push_str("\n# per-column exponential decay (more negative = faster)\n");
            fmt_decay("A", &self.decay_a, &mut out);
            fmt_decay("B", &self.decay_b, &mut out);
        }
        out
    }

    /// An overlay SVG of every series column of both runs.
    pub fn to_svg(&self) -> String {
        let mut curves: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        let mut add = |tag: &str, r: &RunEntry| {
            if let Some(Ok(series)) = r.load_series() {
                for c in series.columns() {
                    if let Some(points) = series.column(c) {
                        if !points.is_empty() {
                            curves.push((format!("{tag}:{c}"), points));
                        }
                    }
                }
            }
        };
        add("A", &self.a);
        add("B", &self.b);
        let title = format!("A={} vs B={}", self.a.id, self.b.id);
        series_svg(&title, &curves)
    }
}

// ---------------------------------------------------------------------------
// SVG line plots — flame.rs style: self-contained, deterministic colors,
// tooltips via <title>, no scripting.

const PLOT_W: f64 = 900.0;
const PLOT_H: f64 = 380.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 34.0;
const MARGIN_B: f64 = 40.0;

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Deterministic per-label color: FNV-1a hashed into a readable palette.
fn curve_color(label: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    let hue = (h % 360) as f64;
    // Fixed saturation/lightness keep every curve legible on white.
    format!("hsl({hue:.0},70%,40%)")
}

/// Renders curves as a line plot. The y axis switches to log scale when
/// every plotted value is strictly positive and the dynamic range exceeds
/// one decade — the natural view for gradient-variance decay.
pub fn series_svg(title: &str, curves: &[(String, Vec<(f64, f64)>)]) -> String {
    let points: Vec<(f64, f64)> = curves
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut svg = String::new();
    svg.push_str(&format!(
        "<?xml version=\"1.0\" standalone=\"no\"?>\n<svg version=\"1.1\" width=\"{PLOT_W}\" height=\"{PLOT_H}\" viewBox=\"0 0 {PLOT_W} {PLOT_H}\" xmlns=\"http://www.w3.org/2000/svg\">\n"
    ));
    svg.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{PLOT_W}\" height=\"{PLOT_H}\" fill=\"white\"/>\n<text x=\"{}\" y=\"20\" font-size=\"14\" font-family=\"monospace\" text-anchor=\"middle\">{}</text>\n",
        PLOT_W / 2.0,
        xml_escape(title)
    ));
    if points.is_empty() {
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" font-size=\"12\" font-family=\"monospace\" text-anchor=\"middle\">no data</text>\n</svg>\n",
            PLOT_W / 2.0,
            PLOT_H / 2.0
        ));
        return svg;
    }

    let log_y = points.iter().all(|&(_, y)| y > 0.0) && {
        let max = points.iter().map(|p| p.1).fold(f64::MIN, f64::max);
        let min = points.iter().map(|p| p.1).fold(f64::MAX, f64::min);
        max / min > 10.0
    };
    let ty = |y: f64| if log_y { y.log10() } else { y };

    let (mut x0, mut x1) = (f64::MAX, f64::MIN);
    let (mut y0, mut y1) = (f64::MAX, f64::MIN);
    for &(x, y) in &points {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(ty(y));
        y1 = y1.max(ty(y));
    }
    if x1 - x0 < 1e-12 {
        x1 = x0 + 1.0;
    }
    if y1 - y0 < 1e-12 {
        y1 = y0 + 1.0;
    }
    let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * (PLOT_W - MARGIN_L - MARGIN_R);
    let py = |y: f64| PLOT_H - MARGIN_B - (ty(y) - y0) / (y1 - y0) * (PLOT_H - MARGIN_T - MARGIN_B);

    // Axes with min/max tick labels.
    svg.push_str(&format!(
        "<line x1=\"{l}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"#444\"/>\n<line x1=\"{l}\" y1=\"{t}\" x2=\"{l}\" y2=\"{b}\" stroke=\"#444\"/>\n",
        l = MARGIN_L,
        r = PLOT_W - MARGIN_R,
        t = MARGIN_T,
        b = PLOT_H - MARGIN_B
    ));
    let ylab = |v: f64| {
        if log_y {
            format!("1e{v:.1}")
        } else {
            format!("{v:.3e}")
        }
    };
    svg.push_str(&format!(
        "<text x=\"{l}\" y=\"{by}\" font-size=\"10\" font-family=\"monospace\" text-anchor=\"end\">{}</text>\n<text x=\"{l}\" y=\"{ty_}\" font-size=\"10\" font-family=\"monospace\" text-anchor=\"end\">{}</text>\n",
        xml_escape(&ylab(y0)),
        xml_escape(&ylab(y1)),
        l = MARGIN_L - 4.0,
        by = PLOT_H - MARGIN_B,
        ty_ = MARGIN_T + 4.0
    ));
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"{y}\" font-size=\"10\" font-family=\"monospace\">{x0:.0}</text>\n<text x=\"{}\" y=\"{y}\" font-size=\"10\" font-family=\"monospace\" text-anchor=\"end\">{x1:.0}</text>\n",
        MARGIN_L,
        PLOT_W - MARGIN_R,
        y = PLOT_H - MARGIN_B + 14.0
    ));

    for (i, (label, pts)) in curves.iter().enumerate() {
        let finite: Vec<(f64, f64)> = pts
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite() && (!log_y || *y > 0.0))
            .collect();
        if finite.is_empty() {
            continue;
        }
        let color = curve_color(label);
        let path: Vec<String> = finite
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        svg.push_str("<g>");
        svg.push_str(&format!("<title>{}</title>", xml_escape(label)));
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
            path.join(" ")
        ));
        // Legend entry, stacked under the title.
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" font-size=\"10\" font-family=\"monospace\" fill=\"{color}\">{}</text>",
            MARGIN_L + 6.0,
            MARGIN_T + 12.0 + 12.0 * i as f64,
            xml_escape(label)
        ));
        svg.push_str("</g>\n");
    }
    svg.push_str("</svg>\n");
    svg
}

/// A minimal inline sparkline of one curve (no axes), for `runs show`.
pub fn sparkline_svg(points: &[(f64, f64)], width: f64, height: f64) -> String {
    let finite: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut svg = format!(
        "<?xml version=\"1.0\" standalone=\"no\"?>\n<svg version=\"1.1\" width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\" xmlns=\"http://www.w3.org/2000/svg\">\n"
    );
    if finite.len() >= 2 {
        let (x0, x1) = finite.iter().fold((f64::MAX, f64::MIN), |(a, b), p| (a.min(p.0), b.max(p.0)));
        let (y0, y1) = finite.iter().fold((f64::MAX, f64::MIN), |(a, b), p| (a.min(p.1), b.max(p.1)));
        let dx = (x1 - x0).max(1e-12);
        let dy = (y1 - y0).max(1e-12);
        let pts: Vec<String> = finite
            .iter()
            .map(|&(x, y)| {
                format!(
                    "{:.1},{:.1}",
                    1.0 + (x - x0) / dx * (width - 2.0),
                    height - 1.0 - (y - y0) / dy * (height - 2.0)
                )
            })
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"hsl(24,85%,45%)\" stroke-width=\"1\"/>\n",
            pts.join(" ")
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// The detailed view of one run: record fields, series summary, decay fits.
pub fn render_show(run: &RunEntry) -> String {
    let mut out = String::new();
    out.push_str(&format!("id       {}\n", run.id));
    out.push_str(&format!("command  {}\n", run.command));
    out.push_str(&format!("git      {}\n", run.git));
    out.push_str(&format!("ts_unix  {:.3}\n", run.ts_unix));
    match run.seed {
        Some(s) => out.push_str(&format!("seed     {s}\n")),
        None => out.push_str("seed     -\n"),
    }
    for (k, v) in &run.config {
        out.push_str(&format!("config   {k} = {v}\n"));
    }
    for (k, v) in &run.metrics {
        out.push_str(&format!("metric   {k} = {v:.6e}\n"));
    }
    match run.load_series() {
        None => out.push_str("series   -\n"),
        Some(Err(e)) => out.push_str(&format!("series   unreadable: {e}\n")),
        Some(Ok(s)) => {
            out.push_str(&format!(
                "series   {} — {} row(s) of {} push(es), stride {}, columns: {}\n",
                run.series.as_deref().unwrap_or(""),
                s.len(),
                s.pushed(),
                s.stride(),
                s.columns().join(", ")
            ));
            for d in column_decays(&s) {
                if let Some(slope) = d.slope {
                    out.push_str(&format!("decay    {:<20} log-slope {slope:+.4}\n", d.column));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{record_run, set_ledger_dir, RunRecord};
    use crate::test_lock;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("plateau_runs_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn decaying_series(rate: f64, label: &str) -> TimeSeries {
        let mut s = TimeSeries::new(vec![label], 64);
        for i in 0..20 {
            s.push(i as f64, &[(rate * i as f64).exp()]);
        }
        s
    }

    #[test]
    fn load_list_find_and_latest() {
        let _guard = test_lock();
        let dir = temp_dir("load");
        set_ledger_dir(Some(&dir));
        let id1 = record_run(
            &RunRecord::new("train").seed(1).metric("final_loss", 0.5),
            Some(&decaying_series(-0.5, "grad_norm")),
        )
        .unwrap()
        .unwrap();
        let id2 = record_run(&RunRecord::new("vqe").metric("energy", -7.2), None)
            .unwrap()
            .unwrap();
        set_ledger_dir(None);

        let ledger = Ledger::load(&dir).unwrap();
        assert!(ledger.warnings.is_empty());
        assert_eq!(ledger.runs.len(), 2);
        assert_eq!(ledger.latest().id, id2);
        assert_eq!(ledger.find(&id1).unwrap().command, "train");
        assert!(ledger.find("zzz").is_err());
        let list = ledger.render_list();
        assert!(list.contains("train") && list.contains("vqe"), "{list}");
        assert!(list.contains("final_loss=5.0000e-1"), "{list}");

        let run = ledger.find(&id1).unwrap();
        let series = run.load_series().unwrap().unwrap();
        assert_eq!(series.columns(), ["grad_norm".to_string()]);
        let show = render_show(run);
        assert!(show.contains("grad_norm") && show.contains("log-slope"), "{show}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn find_prefers_exact_id_over_shared_prefix() {
        let dir = temp_dir("prefix");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-built ledger: "aaa-1" is both a full id and a prefix of
        // "aaa-12", and "aaa" prefixes both.
        let mut lines = String::new();
        for id in ["aaa-1", "aaa-12", "bbb-3"] {
            lines.push_str(&format!(
                "{{\"type\":\"run\",\"id\":\"{id}\",\"ts_unix\":0,\"command\":\"train\",\
                 \"git\":\"g\",\"seed\":null,\"config\":{{}},\"metrics\":{{}},\"series\":null}}\n"
            ));
        }
        std::fs::write(dir.join("ledger.jsonl"), lines).unwrap();
        let ledger = Ledger::load(&dir).unwrap();

        // Exact match wins even though it is also a prefix of another id.
        assert_eq!(ledger.find("aaa-1").unwrap().id, "aaa-1");
        assert_eq!(ledger.find("aaa-12").unwrap().id, "aaa-12");
        // A prefix matching two ids is ambiguous, with the count named.
        let err = ledger.find("aaa").unwrap_err();
        assert!(err.contains("ambiguous") && err.contains("2 matches"), "{err}");
        // A unique prefix still resolves.
        assert_eq!(ledger.find("bbb").unwrap().id, "bbb-3");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_a_warning_not_an_error() {
        let _guard = test_lock();
        let dir = temp_dir("torn");
        set_ledger_dir(Some(&dir));
        record_run(&RunRecord::new("train"), None).unwrap();
        set_ledger_dir(None);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("ledger.jsonl"))
            .unwrap();
        f.write_all(b"{\"type\":\"run\",\"id\":\"tor").unwrap();
        drop(f);
        let ledger = Ledger::load(&dir).unwrap();
        assert_eq!(ledger.runs.len(), 1);
        assert_eq!(ledger.warnings.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn log_slope_recovers_exponential_rates() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (-0.7 * i as f64).exp())).collect();
        let slope = log_slope(&pts).unwrap();
        assert!((slope + 0.7).abs() < 1e-9, "slope {slope}");
        // Non-positive and non-finite samples are ignored; too few → None.
        assert_eq!(log_slope(&[(0.0, 1.0), (1.0, 0.5)]), None);
        assert_eq!(log_slope(&[(0.0, -1.0), (1.0, -0.5), (2.0, -0.2)]), None);
    }

    #[test]
    fn comparison_orders_decay_rates_and_renders() {
        let _guard = test_lock();
        let dir = temp_dir("cmp");
        set_ledger_dir(Some(&dir));
        let fast = record_run(
            &RunRecord::new("variance").metric("final_var", 1e-6),
            Some(&decaying_series(-1.0, "variance")),
        )
        .unwrap()
        .unwrap();
        let slow = record_run(
            &RunRecord::new("variance").metric("final_var", 1e-3),
            Some(&decaying_series(-0.3, "variance")),
        )
        .unwrap()
        .unwrap();
        set_ledger_dir(None);

        let ledger = Ledger::load(&dir).unwrap();
        let cmp = RunComparison::of(ledger.find(&fast).unwrap(), ledger.find(&slow).unwrap());
        let (sa, sb) = (cmp.slope_a("variance").unwrap(), cmp.slope_b("variance").unwrap());
        assert!(sa < sb, "fast decay {sa} should be more negative than {sb}");
        assert!((sa + 1.0).abs() < 1e-6 && (sb + 0.3).abs() < 1e-6);
        assert_eq!(cmp.metric_deltas.len(), 1);
        assert_eq!(cmp.metric_deltas[0].name, "final_var");
        let report = cmp.render();
        assert!(report.contains("final_var") && report.contains("log-slope"), "{report}");

        let svg = cmp.to_svg();
        assert!(svg.starts_with("<?xml"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("A:variance") && svg.contains("B:variance"), "legend missing");
        assert_eq!(svg.matches("<polyline").count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn svg_plots_are_well_formed_even_when_empty() {
        let svg = series_svg("empty", &[]);
        assert!(svg.starts_with("<?xml") && svg.contains("no data"));
        let spark = sparkline_svg(&[(0.0, 1.0), (1.0, 0.5), (2.0, 0.25)], 120.0, 24.0);
        assert!(spark.contains("<polyline") && spark.trim_end().ends_with("</svg>"));
        assert!(sparkline_svg(&[], 120.0, 24.0).trim_end().ends_with("</svg>"));
    }
}
