//! The read side of the observability stack: stream-parse a JSONL trace,
//! rebuild the span forest, and aggregate per span name.
//!
//! A trace is the file written by the JSONL sink (`--metrics-out` /
//! `PLATEAU_METRICS_OUT`): one JSON object per line, mixing `manifest`,
//! `span`, `event`, and `metrics` records. Span records carry a monotonic
//! `id` and the `id` of their innermost enclosing span (`parent`), so the
//! forest is reconstructed directly from the links. Traces recorded before
//! ids existed are still readable: spans close in child-before-parent
//! order, so the `depth` field alone determines the tree.
//!
//! Robustness rules (aborted runs must stay diagnosable):
//! - a torn *final* line (crash mid-write) is skipped with a warning;
//! - a malformed line anywhere else is a hard [`TraceError::Malformed`];
//! - a span whose `parent` id never closed (crash before the parent's
//!   drop) becomes a root, with a warning;
//! - a trace with no span records at all is [`TraceError::Empty`].

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::alloc::fmt_bytes;
use crate::json::Json;
use crate::span::fmt_duration;

/// Failure while reading or interpreting a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A line (other than a torn final line) is not valid JSON.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// The trace holds no span records (or no records at all).
    Empty(String),
    /// A baseline document is structurally wrong.
    BadBaseline(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceError::Malformed { line, message } => {
                write!(f, "malformed trace line {line}: {message}")
            }
            TraceError::Empty(what) => write!(f, "empty trace: {what}"),
            TraceError::BadBaseline(msg) => write!(f, "bad baseline: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// One closed span, as read back from the trace.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Monotonic span id (0 when the trace predates ids).
    pub id: u64,
    /// Id of the enclosing span, if any survived in the trace.
    pub parent: Option<u64>,
    /// Span name (the `span!` macro's first argument).
    pub name: String,
    /// Wall time between entry and drop.
    pub duration_ns: u64,
    /// Nesting depth recorded at drop.
    pub depth: usize,
    /// Wall time not covered by child spans (filled during tree build).
    pub self_ns: u64,
    /// Bytes allocated on the span's thread while it was open (0 when the
    /// trace was recorded without allocation profiling).
    pub alloc_bytes: u64,
    /// Allocation count on the span's thread while it was open.
    pub alloc_count: u64,
    /// High-water-mark rise above the live footprint at span entry.
    pub peak_bytes: u64,
    /// Allocated bytes not attributed to child spans (filled during tree
    /// build, like `self_ns`).
    pub self_alloc_bytes: u64,
    /// Indices (into [`Trace::spans`]) of direct children, in close order.
    pub children: Vec<usize>,
}

/// A parsed trace: the span forest plus run metadata.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Every span record, in file (= close) order.
    pub spans: Vec<SpanNode>,
    /// Indices of root spans, in close order.
    pub roots: Vec<usize>,
    /// `command` from the manifest record, when present.
    pub command: Option<String>,
    /// `git` from the manifest record, when present.
    pub git: Option<String>,
    /// Number of `event` records seen (not part of the tree).
    pub events: usize,
    /// Non-fatal anomalies encountered while reading.
    pub warnings: Vec<String>,
}

impl Trace {
    /// Reads and reconstructs a trace from a JSONL file.
    ///
    /// # Errors
    ///
    /// See [`TraceError`]; a torn final line is tolerated (warning), any
    /// other malformed line is not.
    pub fn read(path: &Path) -> Result<Trace, TraceError> {
        let file = File::open(path)?;
        Trace::from_lines(BufReader::new(file).lines())
    }

    /// Parses a trace from in-memory text (tests, tools).
    ///
    /// # Errors
    ///
    /// Same contract as [`Trace::read`].
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        Trace::from_lines(text.lines().map(|l| Ok(l.to_string())))
    }

    fn from_lines(
        lines: impl Iterator<Item = std::io::Result<String>>,
    ) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        let mut warnings = Vec::new();
        // A parse failure is only forgiven if nothing follows it — i.e. it
        // is the torn final line of a crashed run, not mid-file corruption.
        let mut pending: Option<(usize, String)> = None;
        for (idx, line) in lines.enumerate() {
            let line = line?;
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            if let Some((line_no, message)) = pending.take() {
                return Err(TraceError::Malformed { line: line_no, message });
            }
            match Json::parse(text) {
                Ok(rec) => records.push(rec),
                Err(e) => pending = Some((idx + 1, e.to_string())),
            }
        }
        if let Some((line_no, _)) = pending {
            warnings.push(format!(
                "skipped truncated final line {line_no} (crashed or still-running run)"
            ));
        }
        if records.is_empty() {
            return Err(TraceError::Empty("no records".into()));
        }
        Trace::from_records(&records, warnings)
    }

    /// Builds the span forest from already-parsed records.
    fn from_records(records: &[Json], mut warnings: Vec<String>) -> Result<Trace, TraceError> {
        let mut spans: Vec<SpanNode> = Vec::new();
        let mut command = None;
        let mut git = None;
        let mut events = 0usize;
        for rec in records {
            match rec.get("type").and_then(Json::as_str) {
                Some("span") => {
                    let Some(name) = rec.get("name").and_then(Json::as_str) else {
                        warnings.push("span record without a name skipped".into());
                        continue;
                    };
                    let num = |k: &str| rec.get(k).and_then(Json::as_f64);
                    spans.push(SpanNode {
                        id: num("id").map_or(0, |v| v as u64),
                        parent: rec
                            .get("parent")
                            .and_then(Json::as_f64)
                            .map(|v| v as u64),
                        name: name.to_string(),
                        duration_ns: num("duration_ns").map_or(0, |v| v as u64),
                        depth: num("depth").map_or(0, |v| v as usize),
                        self_ns: 0,
                        alloc_bytes: num("alloc_bytes").map_or(0, |v| v as u64),
                        alloc_count: num("alloc_count").map_or(0, |v| v as u64),
                        peak_bytes: num("peak_bytes").map_or(0, |v| v as u64),
                        self_alloc_bytes: 0,
                        children: Vec::new(),
                    });
                }
                Some("manifest") => {
                    command = rec.get("command").and_then(Json::as_str).map(String::from);
                    git = rec.get("git").and_then(Json::as_str).map(String::from);
                }
                Some("event") => events += 1,
                _ => {} // metrics snapshots and unknown record types
            }
        }
        if spans.is_empty() {
            return Err(TraceError::Empty("no span records".into()));
        }

        let have_ids = spans.iter().all(|s| s.id != 0);
        let mut roots = Vec::new();
        if have_ids {
            let index_of: BTreeMap<u64, usize> =
                spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
            if index_of.len() != spans.len() {
                warnings.push("duplicate span ids in trace; tree may be approximate".into());
            }
            for i in 0..spans.len() {
                match spans[i].parent {
                    Some(p) => match index_of.get(&p) {
                        Some(&pi) if pi != i => spans[pi].children.push(i),
                        _ => {
                            warnings.push(format!(
                                "span id {} names parent {} which never closed; treating as root",
                                spans[i].id, p
                            ));
                            roots.push(i);
                        }
                    },
                    None => roots.push(i),
                }
            }
        } else {
            // Legacy trace without ids: spans close child-before-parent, so
            // a span at depth d adopts every not-yet-claimed span at d+1
            // that closed before it.
            let mut unclaimed: Vec<Vec<usize>> = Vec::new();
            for i in 0..spans.len() {
                let d = spans[i].depth;
                if unclaimed.len() < d + 2 {
                    unclaimed.resize(d + 2, Vec::new());
                }
                spans[i].children = std::mem::take(&mut unclaimed[d + 1]);
                unclaimed[d].push(i);
            }
            roots.extend(unclaimed.first().cloned().unwrap_or_default());
            for orphans in unclaimed.iter().skip(1).filter(|v| !v.is_empty()) {
                warnings.push(format!(
                    "{} span(s) whose parent never closed; treating as roots",
                    orphans.len()
                ));
                roots.extend(orphans.iter().copied());
            }
        }

        // Self time (and self allocation): the span's own total minus what
        // its direct children account for.
        for i in 0..spans.len() {
            let (child_ns, child_bytes) = spans[i].children.iter().fold((0u64, 0u64), |acc, &c| {
                (acc.0 + spans[c].duration_ns, acc.1 + spans[c].alloc_bytes)
            });
            spans[i].self_ns = spans[i].duration_ns.saturating_sub(child_ns);
            spans[i].self_alloc_bytes = spans[i].alloc_bytes.saturating_sub(child_bytes);
        }

        Ok(Trace {
            spans,
            roots,
            command,
            git,
            events,
            warnings,
        })
    }

    /// Total wall time: the sum of root span durations.
    pub fn total_wall_ns(&self) -> u64 {
        self.roots.iter().map(|&r| self.spans[r].duration_ns).sum()
    }

    /// Maximum nesting depth of the reconstructed forest.
    pub fn max_depth(&self) -> usize {
        fn depth_of(trace: &Trace, i: usize) -> usize {
            1 + trace.spans[i]
                .children
                .iter()
                .map(|&c| depth_of(trace, c))
                .max()
                .unwrap_or(0)
        }
        self.roots.iter().map(|&r| depth_of(self, r)).max().unwrap_or(0)
    }
}

/// Aggregate statistics for all spans sharing one name.
#[derive(Debug, Clone, PartialEq)]
pub struct NameStats {
    /// The span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of wall times.
    pub total_ns: u64,
    /// Sum of self times (wall minus direct children).
    pub self_ns: u64,
    /// Fastest single span.
    pub min_ns: u64,
    /// Slowest single span.
    pub max_ns: u64,
    /// `total_ns / count`.
    pub mean_ns: f64,
    /// Exact median of wall times (nearest rank).
    pub p50_ns: u64,
    /// Exact 90th percentile of wall times (nearest rank).
    pub p90_ns: u64,
    /// Exact 99th percentile of wall times (nearest rank).
    pub p99_ns: u64,
    /// Sum of allocated bytes (0 without allocation profiling).
    pub alloc_bytes: u64,
    /// Sum of self-allocated bytes (bytes minus direct children's).
    pub self_alloc_bytes: u64,
    /// Sum of allocation counts.
    pub alloc_count: u64,
    /// Largest single-span peak delta.
    pub peak_bytes: u64,
}

/// Ranking weight for reports and flamegraphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankBy {
    /// Self wall time (the default).
    #[default]
    Time,
    /// Self-allocated bytes.
    Alloc,
    /// Peak footprint delta.
    Peak,
}

impl RankBy {
    /// Parses a `--by` value.
    pub fn parse(s: &str) -> Option<RankBy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "time" | "self" => Some(RankBy::Time),
            "alloc" | "bytes" | "mem" => Some(RankBy::Alloc),
            "peak" => Some(RankBy::Peak),
            _ => None,
        }
    }
}

/// The per-name aggregation of a trace, ready to rank, render, diff, or
/// commit as a baseline.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// One entry per distinct span name, sorted by self time, descending.
    pub stats: Vec<NameStats>,
    /// Total wall time across root spans.
    pub total_wall_ns: u64,
    /// Total number of spans in the trace.
    pub span_count: u64,
    /// `command` from the trace manifest.
    pub command: Option<String>,
    /// `git` from the trace manifest.
    pub git: Option<String>,
    /// Warnings inherited from trace reconstruction.
    pub warnings: Vec<String>,
}

/// Nearest-rank percentile of an already-sorted slice.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Analysis {
    /// Aggregates a reconstructed trace per span name.
    pub fn of(trace: &Trace) -> Analysis {
        #[derive(Default)]
        struct Acc {
            durations: Vec<u64>,
            self_ns: u64,
            alloc_bytes: u64,
            self_alloc_bytes: u64,
            alloc_count: u64,
            peak_bytes: u64,
        }
        let mut by_name: BTreeMap<&str, Acc> = BTreeMap::new();
        for s in &trace.spans {
            let entry = by_name.entry(&s.name).or_default();
            entry.durations.push(s.duration_ns);
            entry.self_ns += s.self_ns;
            entry.alloc_bytes += s.alloc_bytes;
            entry.self_alloc_bytes += s.self_alloc_bytes;
            entry.alloc_count += s.alloc_count;
            entry.peak_bytes = entry.peak_bytes.max(s.peak_bytes);
        }
        let mut stats: Vec<NameStats> = by_name
            .into_iter()
            .map(|(name, mut acc)| {
                acc.durations.sort_unstable();
                let count = acc.durations.len() as u64;
                let total_ns: u64 = acc.durations.iter().sum();
                NameStats {
                    name: name.to_string(),
                    count,
                    total_ns,
                    self_ns: acc.self_ns,
                    min_ns: acc.durations[0],
                    max_ns: *acc.durations.last().expect("non-empty"),
                    mean_ns: total_ns as f64 / count as f64,
                    p50_ns: nearest_rank(&acc.durations, 0.5),
                    p90_ns: nearest_rank(&acc.durations, 0.9),
                    p99_ns: nearest_rank(&acc.durations, 0.99),
                    alloc_bytes: acc.alloc_bytes,
                    self_alloc_bytes: acc.self_alloc_bytes,
                    alloc_count: acc.alloc_count,
                    peak_bytes: acc.peak_bytes,
                }
            })
            .collect();
        stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        Analysis {
            stats,
            total_wall_ns: trace.total_wall_ns(),
            span_count: trace.spans.len() as u64,
            command: trace.command.clone(),
            git: trace.git.clone(),
            warnings: trace.warnings.clone(),
        }
    }

    /// Whether any span in the trace carried allocation attribution.
    pub fn has_alloc_data(&self) -> bool {
        self.stats
            .iter()
            .any(|s| s.alloc_bytes != 0 || s.alloc_count != 0 || s.peak_bytes != 0)
    }

    /// Re-sorts `stats` by the chosen weight, descending (name-tiebreak).
    pub fn rank_by(&mut self, by: RankBy) {
        let key = |s: &NameStats| match by {
            RankBy::Time => s.self_ns,
            RankBy::Alloc => s.self_alloc_bytes,
            RankBy::Peak => s.peak_bytes,
        };
        self.stats
            .sort_by(|a, b| key(b).cmp(&key(a)).then(a.name.cmp(&b.name)));
    }

    /// Restricts the analysis to span names starting with `prefix`
    /// (e.g. `"sim.fuse."`), recomputing the span count over the kept
    /// names. `total_wall_ns` still measures the whole trace so the
    /// rendered `self%` column keeps its meaning (share of the run, not
    /// share of the filtered subset).
    pub fn filter_prefix(&self, prefix: &str) -> Analysis {
        let stats: Vec<NameStats> = self
            .stats
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .cloned()
            .collect();
        let span_count = stats.iter().map(|s| s.count).sum();
        Analysis {
            stats,
            span_count,
            total_wall_ns: self.total_wall_ns,
            command: self.command.clone(),
            git: self.git.clone(),
            warnings: self.warnings.clone(),
        }
    }

    /// Renders the self-time ranking as an aligned text table, keeping the
    /// `top` hottest names (0 = all).
    pub fn render_report(&self, top: usize) -> String {
        let mut out = String::new();
        if let Some(cmd) = &self.command {
            out.push_str(&format!(
                "# trace: {cmd} (git {})\n",
                self.git.as_deref().unwrap_or("unknown")
            ));
        }
        out.push_str(&format!(
            "# {} spans across {} names, total wall {}\n",
            self.span_count,
            self.stats.len(),
            fmt_duration(self.total_wall_ns)
        ));
        for w in &self.warnings {
            out.push_str(&format!("# warning: {w}\n"));
        }
        let shown: &[NameStats] = if top == 0 || top >= self.stats.len() {
            &self.stats
        } else {
            &self.stats[..top]
        };
        let name_w = shown
            .iter()
            .map(|s| s.name.len())
            .chain(["name".len()])
            .max()
            .unwrap_or(4);
        // Memory columns appear only when the trace was recorded with
        // allocation profiling, so plain-trace output stays byte-stable.
        let with_alloc = self.has_alloc_data();
        out.push_str(&format!(
            "{:<name_w$}  {:>6}  {:>9}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
            "name", "count", "self", "self%", "total", "mean", "p50", "p90", "p99"
        ));
        if with_alloc {
            out.push_str(&format!(
                "  {:>10}  {:>10}  {:>8}  {:>10}",
                "self-alloc", "alloc", "allocs", "peak"
            ));
        }
        out.push('\n');
        let wall = self.total_wall_ns.max(1) as f64;
        for s in shown {
            out.push_str(&format!(
                "{:<name_w$}  {:>6}  {:>9}  {:>5.1}%  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                s.name,
                s.count,
                fmt_duration(s.self_ns),
                100.0 * s.self_ns as f64 / wall,
                fmt_duration(s.total_ns),
                fmt_duration(s.mean_ns as u64),
                fmt_duration(s.p50_ns),
                fmt_duration(s.p90_ns),
                fmt_duration(s.p99_ns),
            ));
            if with_alloc {
                out.push_str(&format!(
                    "  {:>10}  {:>10}  {:>8}  {:>10}",
                    fmt_bytes(s.self_alloc_bytes),
                    fmt_bytes(s.alloc_bytes),
                    s.alloc_count,
                    fmt_bytes(s.peak_bytes),
                ));
            }
            out.push('\n');
        }
        if shown.len() < self.stats.len() {
            out.push_str(&format!(
                "# … {} more name(s); re-run with a larger --top\n",
                self.stats.len() - shown.len()
            ));
        }
        out
    }

    /// Serializes the aggregation as a committable baseline document for
    /// the run-to-run diff (`{"type":"trace_baseline","spans":{...}}`).
    pub fn to_baseline_json(&self) -> Json {
        let spans = Json::Obj(
            self.stats
                .iter()
                .map(|s| {
                    (
                        s.name.clone(),
                        Json::obj([
                            ("count", Json::Num(s.count as f64)),
                            ("total_ns", Json::Num(s.total_ns as f64)),
                            ("self_ns", Json::Num(s.self_ns as f64)),
                            ("mean_ns", Json::Num(s.mean_ns)),
                            ("p50_ns", Json::Num(s.p50_ns as f64)),
                            ("p90_ns", Json::Num(s.p90_ns as f64)),
                            ("p99_ns", Json::Num(s.p99_ns as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("type".to_string(), Json::str("trace_baseline")),
            (
                "command".to_string(),
                self.command.clone().map_or(Json::Null, Json::str),
            ),
            (
                "git".to_string(),
                self.git.clone().map_or(Json::Null, Json::str),
            ),
            ("total_wall_ns".to_string(), Json::Num(self.total_wall_ns as f64)),
            ("spans".to_string(), spans),
        ])
    }
}

/// One side of a diff, reduced to what the comparison needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineEntry {
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of wall times.
    pub total_ns: u64,
    /// Sum of self times.
    pub self_ns: u64,
}

/// Extracts the per-name map from a `trace_baseline` document.
///
/// # Errors
///
/// [`TraceError::BadBaseline`] when the document is not a baseline or a
/// span entry is missing required fields.
pub fn baseline_entries(doc: &Json) -> Result<BTreeMap<String, BaselineEntry>, TraceError> {
    if doc.get("type").and_then(Json::as_str) != Some("trace_baseline") {
        return Err(TraceError::BadBaseline(
            "expected a {\"type\":\"trace_baseline\"} document".into(),
        ));
    }
    let spans = doc
        .get("spans")
        .and_then(Json::as_obj)
        .ok_or_else(|| TraceError::BadBaseline("missing \"spans\" object".into()))?;
    let mut out = BTreeMap::new();
    for (name, entry) in spans {
        let num = |k: &str| {
            entry.get(k).and_then(Json::as_f64).ok_or_else(|| {
                TraceError::BadBaseline(format!("span {name:?} missing numeric {k:?}"))
            })
        };
        out.insert(
            name.clone(),
            BaselineEntry {
                count: num("count")? as u64,
                total_ns: num("total_ns")? as u64,
                self_ns: num("self_ns")? as u64,
            },
        );
    }
    Ok(out)
}

impl From<&Analysis> for BTreeMap<String, BaselineEntry> {
    fn from(a: &Analysis) -> Self {
        a.stats
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    BaselineEntry {
                        count: s.count,
                        total_ns: s.total_ns,
                        self_ns: s.self_ns,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLDEN: &str = concat!(
        r#"{"type":"manifest","command":"plateau test","git":"deadbeef","ts_unix":0,"seed":null,"config":{}}"#,
        "\n",
        r#"{"type":"span","name":"leaf","id":2,"parent":1,"duration_ns":100,"depth":1,"fields":{}}"#,
        "\n",
        r#"{"type":"event","level":"info","name":"noise","fields":{}}"#,
        "\n",
        r#"{"type":"span","name":"leaf","id":3,"parent":1,"duration_ns":300,"depth":1,"fields":{}}"#,
        "\n",
        r#"{"type":"span","name":"root","id":1,"parent":null,"duration_ns":1000,"depth":0,"fields":{}}"#,
        "\n",
        r#"{"type":"span","name":"root","id":4,"parent":null,"duration_ns":500,"depth":0,"fields":{}}"#,
        "\n",
        r#"{"type":"metrics","counters":{},"gauges":{},"histograms":{}}"#,
        "\n",
    );

    #[test]
    fn rebuilds_tree_and_self_times_from_ids() {
        let trace = Trace::parse(GOLDEN).unwrap();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.roots.len(), 2);
        assert_eq!(trace.events, 1);
        assert_eq!(trace.command.as_deref(), Some("plateau test"));
        assert_eq!(trace.total_wall_ns(), 1500);
        assert_eq!(trace.max_depth(), 2);
        // root id 1 has both leaves: self = 1000 - (100 + 300).
        let root = trace.spans.iter().position(|s| s.id == 1).unwrap();
        assert_eq!(trace.spans[root].children.len(), 2);
        assert_eq!(trace.spans[root].self_ns, 600);
        let second = trace.spans.iter().position(|s| s.id == 4).unwrap();
        assert_eq!(trace.spans[second].self_ns, 500);
        assert!(trace.warnings.is_empty());
    }

    #[test]
    fn aggregates_per_name_with_exact_percentiles() {
        let a = Analysis::of(&Trace::parse(GOLDEN).unwrap());
        assert_eq!(a.span_count, 4);
        // Sorted by self time: root (600+500) before leaf (100+300).
        assert_eq!(a.stats[0].name, "root");
        assert_eq!(a.stats[0].self_ns, 1100);
        assert_eq!(a.stats[0].total_ns, 1500);
        assert_eq!(a.stats[0].p50_ns, 500);
        assert_eq!(a.stats[0].p90_ns, 1000);
        let leaf = &a.stats[1];
        assert_eq!(leaf.count, 2);
        assert_eq!((leaf.min_ns, leaf.max_ns), (100, 300));
        assert_eq!(leaf.mean_ns, 200.0);
        assert_eq!(leaf.p50_ns, 100);
        assert_eq!(leaf.p99_ns, 300);
        let report = a.render_report(0);
        assert!(report.contains("root"), "{report}");
        assert!(report.contains("p99"), "{report}");
    }

    #[test]
    fn filter_prefix_restricts_stats_but_keeps_wall_time() {
        let a = Analysis::of(&Trace::parse(GOLDEN).unwrap());
        let f = a.filter_prefix("leaf");
        assert_eq!(f.stats.len(), 1);
        assert_eq!(f.stats[0].name, "leaf");
        assert_eq!(f.span_count, 2, "span count recomputed over kept names");
        assert_eq!(f.total_wall_ns, a.total_wall_ns, "self%% keeps its base");
        assert_eq!(f.command, a.command);
        let report = f.render_report(0);
        assert!(report.contains("leaf") && !report.contains("root"), "{report}");
        // A prefix matching nothing yields an empty (but renderable) report.
        let none = a.filter_prefix("sim.fuse.");
        assert_eq!((none.stats.len(), none.span_count), (0, 0));
        none.render_report(0);
    }

    #[test]
    fn legacy_traces_without_ids_rebuild_from_depth() {
        let legacy = concat!(
            r#"{"type":"span","name":"inner","duration_ns":40,"depth":1,"fields":{}}"#,
            "\n",
            r#"{"type":"span","name":"outer","duration_ns":100,"depth":0,"fields":{}}"#,
            "\n",
        );
        let trace = Trace::parse(legacy).unwrap();
        assert_eq!(trace.roots, vec![1]);
        assert_eq!(trace.spans[1].children, vec![0]);
        assert_eq!(trace.spans[1].self_ns, 60);
    }

    #[test]
    fn truncated_final_line_is_skipped_with_warning() {
        let torn = concat!(
            r#"{"type":"span","name":"ok","id":1,"parent":null,"duration_ns":10,"depth":0,"fields":{}}"#,
            "\n",
            r#"{"type":"span","name":"torn","id":2,"#,
        );
        let trace = Trace::parse(torn).unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert!(trace.warnings.iter().any(|w| w.contains("truncated final line")));
    }

    #[test]
    fn corrupt_middle_line_is_a_hard_error() {
        let corrupt = concat!(
            r#"{"type":"span","name":"ok","id":1,"parent":null,"duration_ns":10,"depth":0,"fields":{}}"#,
            "\n",
            "x#corrupt#x\n",
            r#"{"type":"span","name":"ok2","id":2,"parent":null,"duration_ns":10,"depth":0,"fields":{}}"#,
            "\n",
        );
        match Trace::parse(corrupt) {
            Err(TraceError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_spanless_traces_error_gracefully() {
        assert!(matches!(Trace::parse(""), Err(TraceError::Empty(_))));
        let no_spans = r#"{"type":"metrics","counters":{},"gauges":{},"histograms":{}}"#;
        assert!(matches!(Trace::parse(no_spans), Err(TraceError::Empty(_))));
    }

    #[test]
    fn orphaned_parent_becomes_root_with_warning() {
        // Parent id 99 never closed (e.g. the run crashed inside it).
        let orphan = concat!(
            r#"{"type":"span","name":"lost","id":5,"parent":99,"duration_ns":10,"depth":3,"fields":{}}"#,
            "\n",
        );
        let trace = Trace::parse(orphan).unwrap();
        assert_eq!(trace.roots, vec![0]);
        assert!(trace.warnings.iter().any(|w| w.contains("never closed")));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let a = Analysis::of(&Trace::parse(GOLDEN).unwrap());
        let doc = a.to_baseline_json();
        let parsed = Json::parse(&doc.to_pretty_string()).unwrap();
        let entries = baseline_entries(&parsed).unwrap();
        assert_eq!(entries["root"].total_ns, 1500);
        assert_eq!(entries["root"].self_ns, 1100);
        assert_eq!(entries["leaf"].count, 2);
        let direct: BTreeMap<String, BaselineEntry> = (&a).into();
        assert_eq!(direct, entries);
    }

    const ALLOC_TRACE: &str = concat!(
        r#"{"type":"span","name":"leaf","id":2,"parent":1,"duration_ns":100,"depth":1,"fields":{},"alloc_bytes":4096,"alloc_count":4,"peak_bytes":2048}"#,
        "\n",
        r#"{"type":"span","name":"root","id":1,"parent":null,"duration_ns":1000,"depth":0,"fields":{},"alloc_bytes":5120,"alloc_count":6,"peak_bytes":512}"#,
        "\n",
    );

    #[test]
    fn alloc_attribution_flows_into_self_alloc_and_aggregates() {
        let trace = Trace::parse(ALLOC_TRACE).unwrap();
        let root = trace.spans.iter().position(|s| s.id == 1).unwrap();
        // Root allocated 5120 bytes total, 4096 of them inside its leaf.
        assert_eq!(trace.spans[root].self_alloc_bytes, 1024);
        let a = Analysis::of(&trace);
        assert!(a.has_alloc_data());
        let leaf = a.stats.iter().find(|s| s.name == "leaf").unwrap();
        assert_eq!(leaf.alloc_bytes, 4096);
        assert_eq!(leaf.self_alloc_bytes, 4096);
        assert_eq!(leaf.alloc_count, 4);
        assert_eq!(leaf.peak_bytes, 2048);
        let report = a.render_report(0);
        assert!(report.contains("self-alloc"), "{report}");
        assert!(report.contains("4.0KiB"), "{report}");
    }

    #[test]
    fn rank_by_reorders_and_parses() {
        let mut a = Analysis::of(&Trace::parse(ALLOC_TRACE).unwrap());
        assert_eq!(a.stats[0].name, "root", "time ranking: root has more self time");
        a.rank_by(RankBy::Alloc);
        assert_eq!(a.stats[0].name, "leaf", "leaf self-allocated more");
        a.rank_by(RankBy::Peak);
        assert_eq!(a.stats[0].name, "leaf", "leaf raised the peak more");
        a.rank_by(RankBy::Time);
        assert_eq!(a.stats[0].name, "root");
        assert_eq!(RankBy::parse("alloc"), Some(RankBy::Alloc));
        assert_eq!(RankBy::parse("PEAK"), Some(RankBy::Peak));
        assert_eq!(RankBy::parse("time"), Some(RankBy::Time));
        assert_eq!(RankBy::parse("wat"), None);
    }

    #[test]
    fn plain_traces_render_without_memory_columns() {
        let a = Analysis::of(&Trace::parse(GOLDEN).unwrap());
        assert!(!a.has_alloc_data());
        let report = a.render_report(0);
        assert!(!report.contains("self-alloc"), "{report}");
    }

    #[test]
    fn baseline_rejects_wrong_documents() {
        assert!(matches!(
            baseline_entries(&Json::parse(r#"{"type":"metrics"}"#).unwrap()),
            Err(TraceError::BadBaseline(_))
        ));
        let missing = r#"{"type":"trace_baseline","spans":{"x":{"count":1}}}"#;
        assert!(matches!(
            baseline_entries(&Json::parse(missing).unwrap()),
            Err(TraceError::BadBaseline(_))
        ));
    }
}
