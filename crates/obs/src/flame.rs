//! Flamegraph rendering for reconstructed traces: collapsed-stack text
//! (the `name;child;grandchild count` format consumed by external
//! flamegraph tooling) and a self-contained, zero-dependency SVG writer —
//! no JavaScript, no external fonts, openable in any browser.
//!
//! The SVG uses the icicle orientation (roots on top, children below) and
//! one `<g><title>…</title><rect/><text/></g>` group per frame, so every
//! frame carries a hover tooltip with its name, wall time, and share of
//! the total. Frames narrower than a fifth of a pixel are dropped.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::analyze::{RankBy, SpanNode, Trace};
use crate::span::fmt_duration;

/// Renders the trace as collapsed stacks: one `path;to;frame value` line
/// per distinct stack, where `value` is the *self* time in nanoseconds.
/// Lines are sorted by path, so output is deterministic.
pub fn collapsed_stacks(trace: &Trace) -> String {
    fn walk(trace: &Trace, idx: usize, prefix: &str, out: &mut BTreeMap<String, u64>) {
        let span = &trace.spans[idx];
        let path = if prefix.is_empty() {
            span.name.clone()
        } else {
            format!("{prefix};{}", span.name)
        };
        if span.self_ns > 0 {
            *out.entry(path.clone()).or_insert(0) += span.self_ns;
        }
        for &c in &span.children {
            walk(trace, c, &path, out);
        }
    }
    let mut stacks = BTreeMap::new();
    for &r in &trace.roots {
        walk(trace, r, "", &mut stacks);
    }
    let mut out = String::new();
    for (path, ns) in stacks {
        let _ = writeln!(out, "{path} {ns}");
    }
    out
}

const WIDTH: f64 = 1200.0;
const FRAME_H: f64 = 17.0;
const TOP_MARGIN: f64 = 26.0;
const MIN_PX: f64 = 0.2;

/// Deterministic warm color per span name (FNV-1a hash into the classic
/// flamegraph orange/red band), so the same name gets the same color in
/// every rendering and diff-by-eye works across runs.
fn frame_color(name: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    let r = 205 + (h % 50);
    let g = 60 + ((h >> 8) % 120);
    let b = (h >> 16) % 50;
    format!("rgb({r},{g},{b})")
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// The weight a span contributes to frame widths for a given ranking.
/// Inclusive values (the whole span, children included), matching the
/// icicle layout where children nest inside their parent's extent.
fn weight_of(span: &SpanNode, by: RankBy) -> u64 {
    match by {
        RankBy::Time => span.duration_ns,
        RankBy::Alloc => span.alloc_bytes,
        RankBy::Peak => span.peak_bytes,
    }
}

struct FlameWriter<'a> {
    trace: &'a Trace,
    total: u64,
    by: RankBy,
    out: String,
}

impl FlameWriter<'_> {
    fn px(&self, weight: u64) -> f64 {
        weight as f64 / self.total.max(1) as f64 * WIDTH
    }

    fn frame(&mut self, name: &str, x_w: u64, weight: u64, row: usize) {
        let (x, w) = (self.px(x_w), self.px(weight));
        if w < MIN_PX {
            return;
        }
        let y = TOP_MARGIN + row as f64 * FRAME_H;
        let pct = 100.0 * weight as f64 / self.total.max(1) as f64;
        // Byte weights keep the exact count in the tooltip: memory
        // regressions are diagnosed by exact deltas, not rounded units.
        let title = match self.by {
            RankBy::Time => format!("{name} — {} ({pct:.1}%)", fmt_duration(weight)),
            RankBy::Alloc | RankBy::Peak => format!("{name} — {weight} B ({pct:.1}%)"),
        };
        let _ = writeln!(
            self.out,
            r##"<g><title>{}</title><rect x="{x:.2}" y="{y:.1}" width="{w:.2}" height="{:.1}" fill="{}" stroke="#f8f8f8" stroke-width="0.5" rx="1"/>"##,
            xml_escape(&title),
            FRAME_H - 1.0,
            frame_color(name),
        );
        // Monospace at 11px is ~6.8px per glyph; only label frames with
        // room for at least three characters plus padding.
        let chars = ((w - 6.0) / 6.8) as usize;
        if chars >= 3 {
            let label = if name.chars().count() <= chars {
                name.to_string()
            } else {
                let cut: String = name.chars().take(chars.saturating_sub(2)).collect();
                format!("{cut}..")
            };
            let _ = writeln!(
                self.out,
                r#"<text x="{:.2}" y="{:.1}">{}</text>"#,
                x + 3.0,
                y + FRAME_H - 5.0,
                xml_escape(&label),
            );
        }
        let _ = writeln!(self.out, "</g>");
    }

    fn walk(&mut self, idx: usize, x_w: u64, budget: u64, row: usize) {
        // Clamp to the parent's remaining extent: peak deltas are not
        // additive across siblings, so children could otherwise overflow
        // their parent frame.
        let name = self.trace.spans[idx].name.clone();
        let weight = weight_of(&self.trace.spans[idx], self.by).min(budget);
        self.frame(&name, x_w, weight, row);
        let mut child_x = x_w;
        let end = x_w + weight;
        let children = self.trace.spans[idx].children.clone();
        for c in children {
            let cw = weight_of(&self.trace.spans[c], self.by).min(end.saturating_sub(child_x));
            self.walk(c, child_x, cw, row + 1);
            child_x += cw;
        }
    }
}

/// Renders the trace as a standalone SVG flamegraph (icicle layout, root
/// row on top), weighted by wall time. `title` is drawn in the header;
/// pass the trace command.
pub fn flamegraph_svg(trace: &Trace, title: &str) -> String {
    flamegraph_svg_by(trace, title, RankBy::Time)
}

/// Like [`flamegraph_svg`], but frame widths follow the chosen weight:
/// wall time, allocated bytes, or peak-footprint delta. A trace recorded
/// without allocation profiling renders an empty (but valid) graph for
/// the byte weights — every frame has zero width.
pub fn flamegraph_svg_by(trace: &Trace, title: &str, by: RankBy) -> String {
    let total: u64 = trace
        .roots
        .iter()
        .map(|&r| weight_of(&trace.spans[r], by))
        .sum();
    // +1 row for the synthetic "all" frame spanning the whole width.
    let rows = trace.max_depth() + 1;
    let height = TOP_MARGIN + rows as f64 * FRAME_H + 10.0;
    let mut w = FlameWriter {
        trace,
        total,
        by,
        out: String::new(),
    };
    let _ = writeln!(
        w.out,
        r##"<?xml version="1.0" encoding="UTF-8"?>
<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{height:.0}" viewBox="0 0 {WIDTH} {height:.0}">
<style>text {{ font-family: ui-monospace, monospace; font-size: 11px; fill: #1a1a1a; }}</style>
<rect width="100%" height="100%" fill="#fdf6ec"/>
<text x="{:.0}" y="16" text-anchor="middle" style="font-size:13px">{}</text>"##,
        WIDTH / 2.0,
        xml_escape(title),
    );
    w.frame("all", 0, total, 0);
    let mut x_w = 0u64;
    let roots = trace.roots.clone();
    for r in roots {
        let rw = weight_of(&trace.spans[r], by);
        w.walk(r, x_w, rw, 1);
        x_w += rw;
    }
    let _ = writeln!(w.out, "</svg>");
    w.out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLDEN: &str = concat!(
        r#"{"type":"span","name":"leaf","id":2,"parent":1,"duration_ns":100,"depth":1,"fields":{}}"#,
        "\n",
        r#"{"type":"span","name":"leaf","id":3,"parent":1,"duration_ns":300,"depth":1,"fields":{}}"#,
        "\n",
        r#"{"type":"span","name":"root","id":1,"parent":null,"duration_ns":1000,"depth":0,"fields":{}}"#,
        "\n",
        r#"{"type":"span","name":"root","id":4,"parent":null,"duration_ns":500,"depth":0,"fields":{}}"#,
        "\n",
    );

    #[test]
    fn collapsed_stacks_carry_self_time() {
        let trace = Trace::parse(GOLDEN).unwrap();
        let text = collapsed_stacks(&trace);
        // Both roots merge into one "root" line (600 + 500 self), the
        // leaves merge under "root;leaf" (100 + 300).
        assert_eq!(text, "root 1100\nroot;leaf 400\n");
    }

    #[test]
    fn svg_is_standalone_and_well_formed() {
        let trace = Trace::parse(GOLDEN).unwrap();
        let svg = flamegraph_svg(&trace, "plateau <test> & co");
        assert!(svg.starts_with("<?xml version=\"1.0\""));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        // Frames: synthetic all + 2 roots + 2 leaves.
        assert_eq!(svg.matches("<g>").count(), 5);
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
        assert!(svg.contains("&lt;test&gt; &amp; co"), "title is escaped");
        assert!(svg.contains("root"));
        // Every frame carries a tooltip with duration and percentage.
        assert!(svg.contains("100.0%"), "the synthetic root spans everything");
    }

    #[test]
    fn subpixel_frames_are_dropped() {
        let mut lines = String::new();
        // One giant root with one tiny child far below the 0.2px cutoff.
        lines.push_str(
            r#"{"type":"span","name":"tiny","id":2,"parent":1,"duration_ns":1,"depth":1,"fields":{}}"#,
        );
        lines.push('\n');
        lines.push_str(
            r#"{"type":"span","name":"huge","id":1,"parent":null,"duration_ns":100000000,"depth":0,"fields":{}}"#,
        );
        lines.push('\n');
        let trace = Trace::parse(&lines).unwrap();
        let svg = flamegraph_svg(&trace, "t");
        assert!(svg.contains("huge"));
        assert!(!svg.contains("tiny"));
    }

    #[test]
    fn alloc_weighted_svg_carries_exact_byte_tooltips() {
        let lines = concat!(
            r#"{"type":"span","name":"leaf","id":2,"parent":1,"duration_ns":100,"depth":1,"fields":{},"alloc_bytes":4096,"alloc_count":4,"peak_bytes":2048}"#,
            "\n",
            r#"{"type":"span","name":"root","id":1,"parent":null,"duration_ns":1000,"depth":0,"fields":{},"alloc_bytes":5120,"alloc_count":6,"peak_bytes":512}"#,
            "\n",
        );
        let trace = Trace::parse(lines).unwrap();
        let svg = flamegraph_svg_by(&trace, "t", RankBy::Alloc);
        assert!(svg.contains("root — 5120 B (100.0%)"), "{svg}");
        assert!(svg.contains("leaf — 4096 B (80.0%)"), "{svg}");
        // Peak weight: the leaf's 2048 delta is clamped to root's 512.
        let peak = flamegraph_svg_by(&trace, "t", RankBy::Peak);
        assert!(peak.contains("root — 512 B (100.0%)"), "{peak}");
        assert!(peak.contains("leaf — 512 B (100.0%)"), "{peak}");
    }

    #[test]
    fn byte_weights_on_plain_traces_yield_empty_valid_svg() {
        let trace = Trace::parse(GOLDEN).unwrap();
        let svg = flamegraph_svg_by(&trace, "t", RankBy::Alloc);
        assert!(svg.starts_with("<?xml version=\"1.0\""));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<g>").count(), 0, "all frames are zero-width");
    }

    #[test]
    fn colors_are_deterministic_per_name() {
        assert_eq!(frame_color("variance_cell"), frame_color("variance_cell"));
        assert_ne!(frame_color("variance_cell"), frame_color("train"));
    }
}
