//! Spans, structured events, and the two subscribers (human-readable
//! stderr, machine-readable JSONL).
//!
//! A [`Span`] times a scope. On entry it logs a `> name` line to stderr at
//! `debug` level; on drop it logs `< name <duration>`, appends a
//! `{"type":"span",...}` JSONL record when a sink is open, and records the
//! duration into a `span.<name>_ns` histogram when metrics are enabled.
//! When none of the three subscribers is listening, entering a span is two
//! relaxed atomic loads — no clock read, no field construction, no
//! allocation.
//!
//! Span nesting depth is tracked per-thread (for stderr indentation and
//! the `depth` field of JSONL records); a span moved across threads will
//! report the depth of the thread it drops on.
//!
//! Active spans additionally carry a process-wide monotonic `id` and the
//! `id` of their innermost active ancestor on the same thread (`parent`,
//! tracked by a thread-local current-span stack). Both land in the JSONL
//! record, so a trace is a reconstructible forest — see [`crate::analyze`].
//! Disabled spans skip id assignment entirely; the disabled path stays at
//! two relaxed atomic loads.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, Once};
use std::time::Instant;

use crate::json::Json;
use crate::{level_enabled, metrics_enabled, Level};

/// A dynamically typed field value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Bool(b) => Json::Bool(*b),
            Value::I64(v) => Json::Num(*v as f64),
            Value::U64(v) => Json::Num(*v as f64),
            Value::F64(v) => Json::Num(*v),
            Value::Str(s) => Json::str(s.clone()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A named field on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (the identifier from the macro call site).
    pub key: &'static str,
    /// Field value.
    pub value: Value,
}

impl Field {
    /// Builds a field from anything convertible to [`Value`].
    pub fn new(key: &'static str, value: impl Into<Value>) -> Field {
        Field {
            key,
            value: value.into(),
        }
    }
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Ids of the active spans enclosing the current point of execution,
    /// innermost last. Only *active* spans are pushed, so id assignment
    /// costs nothing on the disabled path.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Monotonic span id source; 0 is reserved for "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn indent(depth: usize) -> String {
    "  ".repeat(depth)
}

fn fmt_fields(fields: &[Field]) -> String {
    if fields.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for f in fields {
        out.push(' ');
        out.push_str(f.key);
        out.push('=');
        out.push_str(&f.value.to_string());
    }
    out
}

pub(crate) fn fmt_duration(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Writes one formatted line to stderr. The caller has already checked the
/// level; this just formats.
pub fn log(level: Level, msg: &str) {
    let depth = DEPTH.with(Cell::get);
    eprintln!("[plateau {:>5}] {}{}", level.as_str(), indent(depth), msg);
}

/// A timed scope. Create via the [`span!`](crate::span) macro; the span
/// closes (and reports) when dropped.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<Field>,
    id: u64,
    parent: Option<u64>,
    alloc: Option<crate::alloc::SpanAllocStart>,
    stderr: bool,
    jsonl: bool,
    metrics: bool,
}

impl Span {
    /// Enters a span, building fields lazily only if some subscriber is
    /// listening.
    pub fn enter_with(name: &'static str, make_fields: impl FnOnce() -> Vec<Field>) -> Span {
        let stderr = level_enabled(Level::Debug);
        let jsonl = jsonl_active();
        let metrics = metrics_enabled();
        if !(stderr || jsonl || metrics) {
            return Span {
                name,
                start: None,
                fields: Vec::new(),
                id: 0,
                parent: None,
                alloc: None,
                stderr: false,
                jsonl: false,
                metrics: false,
            };
        }
        let fields = make_fields();
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let id = NEXT_SPAN_ID.fetch_add(1, Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        if stderr {
            eprintln!(
                "[plateau {:>5}] {}> {}{}",
                Level::Debug.as_str(),
                indent(depth),
                name,
                fmt_fields(&fields)
            );
        }
        // Snapshot last, so the span's own bookkeeping (field vector,
        // stack growth) is not charged to it.
        let alloc = crate::alloc::span_start();
        Span {
            name,
            start: Some(Instant::now()),
            fields,
            id,
            parent,
            alloc,
            stderr,
            jsonl,
            metrics,
        }
    }

    /// The monotonic id assigned at entry (0 for inactive spans).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the enclosing active span at entry, if any.
    pub fn parent_id(&self) -> Option<u64> {
        self.parent
    }

    /// Whether any subscriber accepted this span.
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }

    /// Attaches another field after entry (e.g. a result computed inside
    /// the span). A no-op on inactive spans.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.start.is_some() {
            self.fields.push(Field::new(key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Close the attribution window before any record building below
        // allocates on this thread.
        let alloc = self.alloc.take().map(crate::alloc::SpanAllocStart::finish);
        let depth = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // The common case is LIFO drop on the entering thread; a span
            // dropped out of order (or on another thread) is removed from
            // wherever it sits so the stack cannot leak entries.
            match s.last() {
                Some(&top) if top == self.id => {
                    s.pop();
                }
                _ => s.retain(|&id| id != self.id),
            }
        });
        if self.stderr {
            eprintln!(
                "[plateau {:>5}] {}< {} {}{}",
                Level::Debug.as_str(),
                indent(depth),
                self.name,
                fmt_duration(dur_ns),
                fmt_fields(&self.fields)
            );
        }
        if self.jsonl {
            let fields = Json::Obj(
                self.fields
                    .iter()
                    .map(|f| (f.key.to_string(), f.value.to_json()))
                    .collect(),
            );
            let mut record = vec![
                ("type".to_string(), Json::str("span")),
                ("name".to_string(), Json::str(self.name)),
                ("id".to_string(), Json::Num(self.id as f64)),
                (
                    "parent".to_string(),
                    self.parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                ),
                ("duration_ns".to_string(), Json::Num(dur_ns as f64)),
                ("depth".to_string(), Json::from(depth)),
                ("fields".to_string(), fields),
            ];
            if let Some(a) = alloc {
                record.push(("alloc_bytes".to_string(), Json::Num(a.bytes as f64)));
                record.push(("alloc_count".to_string(), Json::Num(a.count as f64)));
                record.push(("peak_bytes".to_string(), Json::Num(a.peak_bytes as f64)));
            }
            write_jsonl_record(&Json::Obj(record));
        }
        if self.metrics {
            crate::metrics::histogram(&format!("span.{}_ns", self.name)).record(dur_ns);
        }
    }
}

/// Emits a structured event (prefer the [`event!`](crate::event) macro).
/// Goes to stderr when `level` passes the filter, and to the JSONL sink
/// whenever one is open; fields are built lazily.
pub fn emit_event(level: Level, name: &str, make_fields: impl FnOnce() -> Vec<Field>) {
    let stderr = level != Level::Off && level_enabled(level);
    let jsonl = jsonl_active();
    if !(stderr || jsonl) {
        return;
    }
    let fields = make_fields();
    if stderr {
        log(level, &format!("{}{}", name, fmt_fields(&fields)));
    }
    if jsonl {
        write_jsonl_record(&Json::Obj(vec![
            ("type".to_string(), Json::str("event")),
            ("level".to_string(), Json::str(level.as_str())),
            ("name".to_string(), Json::str(name)),
            (
                "fields".to_string(),
                Json::Obj(
                    fields
                        .iter()
                        .map(|f| (f.key.to_string(), f.value.to_json()))
                        .collect(),
                ),
            ),
        ]));
    }
}

static JSONL_ON: AtomicBool = AtomicBool::new(false);
static JSONL_SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Whether a JSONL sink is currently open.
#[inline]
pub fn jsonl_active() -> bool {
    JSONL_ON.load(Relaxed)
}

/// Opens (truncating) a JSONL sink at `path`. Subsequent spans, events,
/// manifests, and metric snapshots append one JSON object per line.
///
/// The first call also chains a panic hook that flushes the sink, so a
/// panicking run still leaves a usable (at worst truncated-by-one-line)
/// trace on disk — the analyzer tolerates a torn final line.
pub fn set_jsonl_path(path: &Path) -> io::Result<()> {
    static PANIC_FLUSH: Once = Once::new();
    PANIC_FLUSH.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            flush_jsonl();
        }));
    });
    let file = File::create(path)?;
    *lock_sink() = Some(BufWriter::new(file));
    JSONL_ON.store(true, Relaxed);
    Ok(())
}

/// Flushes the sink without closing it. Uses `try_lock` so it is safe to
/// call from a panic hook even if the panic unwound out of a write.
pub fn flush_jsonl() {
    if let Ok(mut guard) = JSONL_SINK.try_lock() {
        if let Some(w) = guard.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Appends one record to the sink, if open. Write errors are swallowed —
/// observability must never take down the experiment.
pub fn write_jsonl_record(record: &Json) {
    if !jsonl_active() {
        return;
    }
    if let Some(w) = lock_sink().as_mut() {
        let _ = writeln!(w, "{record}");
    }
}

/// Flushes and closes the sink. Idempotent.
pub fn close_jsonl() {
    JSONL_ON.store(false, Relaxed);
    if let Some(mut w) = lock_sink().take() {
        let _ = w.flush();
    }
}

fn lock_sink() -> std::sync::MutexGuard<'static, Option<BufWriter<File>>> {
    JSONL_SINK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_log_level, set_metrics_enabled, test_lock};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("plateau_obs_{}_{}.jsonl", tag, std::process::id()))
    }

    #[test]
    fn disabled_span_skips_field_construction() {
        let _guard = test_lock();
        set_log_level(Level::Error);
        set_metrics_enabled(false);
        close_jsonl();
        let mut built = false;
        {
            let _s = Span::enter_with("test_disabled", || {
                built = true;
                vec![]
            });
        }
        assert!(!built, "fields must not be built with all subscribers off");
    }

    #[test]
    fn active_span_records_duration_histogram() {
        let _guard = test_lock();
        set_log_level(Level::Error);
        set_metrics_enabled(true);
        let h = crate::metrics::histogram("span.test_active_ns");
        let before = h.count();
        {
            let _s = crate::span!("test_active", q = 4usize);
        }
        assert_eq!(h.count(), before + 1);
        set_metrics_enabled(false);
    }

    #[test]
    fn jsonl_sink_round_trips_span_and_event_records() {
        let _guard = test_lock();
        set_log_level(Level::Error);
        set_metrics_enabled(false);
        let path = temp_path("roundtrip");
        set_jsonl_path(&path).expect("create sink");
        {
            let mut s = crate::span!("outer", strategy = "gaussian", q = 8usize);
            s.record("variance", 1.5e-3);
            let _inner = crate::span!("inner");
            crate::event!(Level::Warn, "test_event", iteration = 3usize);
        }
        close_jsonl();
        let text = std::fs::read_to_string(&path).expect("read sink");
        let _ = std::fs::remove_file(&path);
        let records: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("every line is valid JSON"))
            .collect();
        assert_eq!(records.len(), 3);
        // The event fires first, then inner closes, then outer.
        assert_eq!(records[0].get("type").unwrap().as_str(), Some("event"));
        assert_eq!(records[0].get("name").unwrap().as_str(), Some("test_event"));
        assert_eq!(records[0].get("level").unwrap().as_str(), Some("warn"));
        assert_eq!(
            records[0].get("fields").unwrap().get("iteration").unwrap().as_f64(),
            Some(3.0)
        );
        assert_eq!(records[1].get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(records[1].get("depth").unwrap().as_f64(), Some(1.0));
        let outer = &records[2];
        assert_eq!(outer.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(outer.get("depth").unwrap().as_f64(), Some(0.0));
        // The inner span's parent is the outer span's id; ids are
        // monotonically increasing in entry order.
        let outer_id = outer.get("id").unwrap().as_f64().unwrap();
        let inner_id = records[1].get("id").unwrap().as_f64().unwrap();
        assert!(inner_id > outer_id, "inner entered after outer");
        assert_eq!(records[1].get("parent").unwrap().as_f64(), Some(outer_id));
        assert_eq!(outer.get("parent"), Some(&Json::Null));
        assert!(outer.get("duration_ns").unwrap().as_f64().unwrap() >= 0.0);
        let fields = outer.get("fields").unwrap();
        assert_eq!(fields.get("strategy").unwrap().as_str(), Some("gaussian"));
        assert_eq!(fields.get("q").unwrap().as_f64(), Some(8.0));
        assert_eq!(fields.get("variance").unwrap().as_f64(), Some(1.5e-3));
    }

    #[test]
    fn event_below_level_without_sink_is_dropped() {
        let _guard = test_lock();
        set_log_level(Level::Error);
        set_metrics_enabled(false);
        close_jsonl();
        let mut built = false;
        emit_event(Level::Info, "quiet", || {
            built = true;
            vec![]
        });
        assert!(!built);
    }

    #[test]
    fn span_stack_survives_out_of_order_drops() {
        let _guard = test_lock();
        set_log_level(Level::Error);
        set_metrics_enabled(true);
        let a = Span::enter_with("ooo_a", Vec::new);
        let b = Span::enter_with("ooo_b", Vec::new);
        let c = Span::enter_with("ooo_c", Vec::new);
        assert_eq!(b.parent_id(), Some(a.id()));
        assert_eq!(c.parent_id(), Some(b.id()));
        // Drop b before c: c's entry must be removed correctly anyway and
        // a fresh span must again parent on `a` once b and c are gone.
        drop(b);
        drop(c);
        let d = Span::enter_with("ooo_d", Vec::new);
        assert_eq!(d.parent_id(), Some(a.id()));
        drop(d);
        drop(a);
        let root = Span::enter_with("ooo_root", Vec::new);
        assert_eq!(root.parent_id(), None);
        set_metrics_enabled(false);
    }

    #[test]
    fn inactive_spans_get_no_ids() {
        let _guard = test_lock();
        set_log_level(Level::Error);
        set_metrics_enabled(false);
        close_jsonl();
        let s = Span::enter_with("inactive", Vec::new);
        assert_eq!(s.id(), 0);
        assert_eq!(s.parent_id(), None);
    }

    #[test]
    fn duration_formatting_is_human_readable() {
        assert_eq!(fmt_duration(0), "0ns");
        assert_eq!(fmt_duration(9_999), "9999ns");
        assert_eq!(fmt_duration(25_000), "25.0us");
        assert_eq!(fmt_duration(12_300_000), "12.3ms");
        assert_eq!(fmt_duration(2_500_000_000), "2.50s");
    }
}
