//! A tiny JSON value tree — the workspace's replacement for `serde`.
//!
//! Historically this lived in `plateau-bench` as a writer-only module
//! (reports were emitted, never read back). The observability layer both
//! writes JSONL event streams *and* reads recorded bench baselines, so the
//! module moved here and grew a recursive-descent parser. `plateau-bench`
//! re-exports it, so `plateau_bench::json::Json` keeps working.
//!
//! Output is deterministic: object keys keep insertion order, floats are
//! written with enough precision to round-trip (`{:?}` semantics), and
//! strings are escaped per RFC 8259. The parser accepts any RFC 8259
//! document (including `\uXXXX` escapes with surrogate pairs) and rejects
//! trailing garbage.

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats serialize as `null` (JSON has
    /// no NaN/Inf), matching what the figure post-processing expects.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a complete JSON document. Leading/trailing whitespace is
    /// allowed; anything else after the top-level value is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format the report files use.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(depth + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            other => {
                use fmt::Write;
                write!(out, "{other}").expect("write to String is infallible");
            }
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: must pair with \uDC00-\uDFFF.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 leaves pos past the digits; compensate for
                            // the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character"));
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(c) => {
                    // Multi-byte UTF-8 scalar: the input came from a &str,
                    // so the lead byte gives the exact width and the
                    // sequence is well-formed. Decoding just that window
                    // keeps long strings linear — validating the whole
                    // remaining input per character is quadratic.
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = &self.bytes[self.pos..self.pos + width];
                    let s = std::str::from_utf8(chunk).expect("input came from &str");
                    let ch = s.chars().next().expect("non-empty chunk");
                    out.push(ch);
                    self.pos += width;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if v.is_finite() => {
                if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v:?}")
                }
            }
            Json::Num(_) => write!(f, "null"),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                write!(f, "{buf}")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let v = Json::obj([
            ("name", Json::str("rx_apply/4")),
            ("median_ns", Json::Num(1234.5)),
            ("iters", Json::from(20usize)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"rx_apply/4","median_ns":1234.5,"iters":20,"ok":true,"tags":["a",null]}"#
        );
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn pretty_output_is_indented_and_newline_terminated() {
        let v = Json::obj([("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))]);
        let s = v.to_pretty_string();
        assert!(s.ends_with('\n'));
        assert!(s.contains("  \"xs\": ["));
        assert!(s.contains("\n    1,"));
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).to_pretty_string(), "[]\n");
        assert_eq!(Json::Obj(vec![]).to_pretty_string(), "{}\n");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_nested_structures() {
        let v = Json::parse(r#"{"a":[1,{"b":null},"x"],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap(), &Json::Obj(vec![]));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].get("b"),
            Some(&Json::Null)
        );
    }

    #[test]
    fn parse_string_escapes_and_surrogates() {
        let v = Json::parse(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndA\u{1F600}");
        let pair = Json::parse("\"\\ud83d\\ude00 \\u03c0\"").unwrap();
        assert_eq!(pair.as_str().unwrap(), "\u{1F600} \u{3C0}");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(Json::parse("1 2").is_err(), "trailing garbage");
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let v = Json::obj([
            ("name", Json::str("variance_scan_cell/8")),
            ("median_ns", Json::Num(98765.4321)),
            ("tags", Json::Arr(vec![Json::Bool(false), Json::Num(-1.0)])),
            ("nested", Json::obj([("unicode", Json::str("π ≈ 3.14159\n"))])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty_string()).unwrap(), v);
    }
}
