//! Run manifests: stamp every CLI/bench invocation with what ran, from
//! which source tree, with which config and seed — then close the run
//! with a final metrics snapshot so each JSONL file is self-contained
//! and runs are comparable after the fact.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::span::{close_jsonl, jsonl_active, write_jsonl_record};
use crate::{level_enabled, Level};

/// The output of `git describe --always --dirty --tags`, or `"unknown"`
/// when git or the repository is unavailable.
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The observability-relevant environment variables stamped into every
/// manifest and ledger record, so a trace stays interpretable after the
/// fact (was the run pinned to one thread? did gradients go through the
/// fusion compiler? was a log level forcing extra stderr work?).
pub const TRACKED_ENV: &[&str] = &[
    "PLATEAU_THREADS",
    "PLATEAU_LOG",
    "PLATEAU_METRICS",
    "PLATEAU_METRICS_OUT",
    "PLATEAU_SIM_FUSE",
    "PLATEAU_LEDGER",
];

/// The `{"env":{...},"cores":N}` fragment of the manifest: tracked env
/// vars (unset → `null`) plus the detected core count.
fn environment_json() -> (Json, Json) {
    let env = Json::Obj(
        TRACKED_ENV
            .iter()
            .map(|&k| {
                let v = std::env::var(k).map_or(Json::Null, Json::str);
                (k.to_string(), v)
            })
            .collect(),
    );
    let cores = std::thread::available_parallelism()
        .map_or(Json::Null, |n| Json::from(n.get()));
    (env, cores)
}

/// Builds a `{"type":"manifest",...}` record for `command` (e.g.
/// `"plateau variance"`) with arbitrary config pairs and an optional RNG
/// seed. Exposed separately from [`emit_manifest`] for tests.
pub fn build_manifest(
    command: &str,
    config: Vec<(String, Json)>,
    seed: Option<u64>,
) -> Json {
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as f64)
        .unwrap_or(0.0);
    let (env, cores) = environment_json();
    Json::Obj(vec![
        ("type".to_string(), Json::str("manifest")),
        ("command".to_string(), Json::str(command)),
        ("git".to_string(), Json::str(git_describe())),
        ("ts_unix".to_string(), Json::Num(ts)),
        (
            "seed".to_string(),
            seed.map_or(Json::Null, |s| Json::Num(s as f64)),
        ),
        ("config".to_string(), Json::Obj(config)),
        ("env".to_string(), env),
        ("cores".to_string(), cores),
    ])
}

/// Emits the run manifest: appended to the JSONL sink when one is open,
/// logged to stderr at `debug`. Does nothing (and spawns no `git`
/// subprocess) when neither subscriber is listening.
pub fn emit_manifest(command: &str, config: Vec<(String, Json)>, seed: Option<u64>) {
    let stderr = level_enabled(Level::Debug);
    if !stderr && !jsonl_active() {
        return;
    }
    let manifest = build_manifest(command, config, seed);
    if stderr {
        crate::debug!("manifest: {manifest}");
    }
    write_jsonl_record(&manifest);
}

/// Appends the current metrics snapshot as a `{"type":"metrics",...}`
/// record, if a JSONL sink is open.
pub fn emit_metrics_snapshot() {
    if !jsonl_active() {
        return;
    }
    write_jsonl_record(&crate::metrics::snapshot().to_json());
}

/// Ends the run: writes the final metrics snapshot and flushes/closes the
/// JSONL sink. Safe to call unconditionally (no-op without a sink).
pub fn finish_run() {
    emit_metrics_snapshot();
    close_jsonl();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_log_level, set_metrics_enabled, test_lock};

    #[test]
    fn manifest_shape_and_parseability() {
        let m = build_manifest(
            "plateau variance",
            vec![
                ("qubits".to_string(), Json::str("2,4")),
                ("circuits".to_string(), Json::from(20usize)),
            ],
            Some(42),
        );
        let parsed = Json::parse(&m.to_string()).expect("manifest is valid JSON");
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("manifest"));
        assert_eq!(parsed.get("command").unwrap().as_str(), Some("plateau variance"));
        assert_eq!(parsed.get("seed").unwrap().as_f64(), Some(42.0));
        assert_eq!(
            parsed.get("config").unwrap().get("circuits").unwrap().as_f64(),
            Some(20.0)
        );
        let git = parsed.get("git").unwrap().as_str().unwrap();
        assert!(!git.is_empty());
        assert!(parsed.get("ts_unix").unwrap().as_f64().unwrap() > 0.0);
        // Environment capture: every tracked variable has a key (string or
        // null), and the detected core count is a positive number.
        let env = parsed.get("env").expect("env object");
        for key in ["PLATEAU_THREADS", "PLATEAU_LOG", "PLATEAU_METRICS_OUT", "PLATEAU_SIM_FUSE", "PLATEAU_LEDGER"] {
            assert!(env.get(key).is_some(), "manifest env missing {key}");
        }
        assert!(parsed.get("cores").unwrap().as_f64().unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn manifest_env_reflects_set_variables() {
        let _guard = test_lock();
        std::env::set_var("PLATEAU_THREADS", "3");
        let m = build_manifest("test env", vec![], None);
        std::env::remove_var("PLATEAU_THREADS");
        assert_eq!(
            m.get("env").unwrap().get("PLATEAU_THREADS").unwrap().as_str(),
            Some("3")
        );
        let m2 = build_manifest("test env", vec![], None);
        assert_eq!(m2.get("env").unwrap().get("PLATEAU_THREADS"), Some(&Json::Null));
    }

    #[test]
    fn finish_run_writes_snapshot_then_closes() {
        let _guard = test_lock();
        set_log_level(crate::Level::Error);
        set_metrics_enabled(true);
        crate::metrics::reset();
        let path = std::env::temp_dir()
            .join(format!("plateau_obs_manifest_{}.jsonl", std::process::id()));
        crate::span::set_jsonl_path(&path).expect("create sink");
        emit_manifest(
            "test finish",
            vec![("k".to_string(), Json::str("v"))],
            None,
        );
        crate::metrics::counter("test.manifest.counter").add(5);
        finish_run();
        assert!(!jsonl_active());
        let text = std::fs::read_to_string(&path).expect("read sink");
        let _ = std::fs::remove_file(&path);
        let records: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("valid JSON line"))
            .collect();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("type").unwrap().as_str(), Some("manifest"));
        assert_eq!(records[0].get("seed"), Some(&Json::Null));
        assert_eq!(records[1].get("type").unwrap().as_str(), Some("metrics"));
        assert_eq!(
            records[1]
                .get("counters")
                .unwrap()
                .get("test.manifest.counter")
                .unwrap()
                .as_f64(),
            Some(5.0)
        );
        crate::metrics::reset();
        set_metrics_enabled(false);
    }
}
