//! The global metrics registry: counters, gauges, and log₂-scale
//! histograms.
//!
//! Metrics are interned by name into a process-global registry and handed
//! out as `&'static` references, so the hot path never touches the
//! registry lock — the `counter!`/`gauge!`/`histogram!` macros cache the
//! reference in a per-call-site `OnceLock`. Updates are relaxed atomics
//! guarded by a single [`metrics_enabled`](crate::metrics_enabled) branch;
//! with metrics off, nothing is recorded and [`snapshot`] is empty.
//!
//! # Naming scheme
//!
//! `"<crate>.<subject>.<detail>"`, lowercase, dot-separated:
//! `sim.gate.rotation`, `grad.executions.adjoint`, `par.task_ns`,
//! `train.grad_norm`, `span.variance_cell_ns` (`_ns` suffix ⇒ the value is
//! nanoseconds).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::json::Json;
use crate::metrics_enabled;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing `u64` counter.
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    /// The interned metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// A last-write-wins `f64` gauge.
pub struct Gauge {
    name: String,
    bits: AtomicU64,
    touched: AtomicBool,
}

impl Gauge {
    /// Records the latest value. A no-op while metrics are disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if metrics_enabled() {
            self.bits.store(v.to_bits(), Relaxed);
            self.touched.store(true, Relaxed);
        }
    }

    /// The most recently set value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }

    /// The interned metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn reset(&self) {
        self.bits.store(0, Relaxed);
        self.touched.store(false, Relaxed);
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Bucket 0 holds exactly the value 0; bucket `k ≥ 1` holds values in
/// `[2^(k-1), 2^k - 1]`. 65 buckets cover the full `u64` range, so
/// recording never saturates or clips.
pub struct Histogram {
    name: String,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// The bucket index a value lands in: `0` for 0, else `64 - leading_zeros`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive `[lo, hi]` range of values covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
    if i == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lo, hi)
    }
}

impl Histogram {
    /// Records one sample. A no-op while metrics are disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// The interned metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-bucket sample counts (index ↔ [`bucket_bounds`]).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by locating the bucket
    /// holding the nearest-rank sample and interpolating linearly inside
    /// its `[lo, hi]` bounds. Exact to within one bucket (a factor of 2 on
    /// a log₂ scale); `None` with no samples or a `q` outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        Some(percentile_from_buckets(&self.bucket_counts(), count, q))
    }

    /// Aggregates the current state; `None` if no samples were recorded.
    pub fn summary(&self) -> Option<HistogramSummary> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let sum = self.sum.load(Relaxed);
        let buckets = self.bucket_counts();
        Some(HistogramSummary {
            count,
            sum,
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
            mean: sum as f64 / count as f64,
            approx_p50: percentile_from_buckets(&buckets, count, 0.5),
            approx_p90: percentile_from_buckets(&buckets, count, 0.9),
            approx_p99: percentile_from_buckets(&buckets, count, 0.99),
        })
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// Shared quantile kernel: nearest-rank bucket location plus linear
/// interpolation between that bucket's bounds. `count` must be the total
/// across `buckets` and nonzero.
fn percentile_from_buckets(buckets: &[u64; HISTOGRAM_BUCKETS], count: u64, q: f64) -> u64 {
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let (lo, hi) = bucket_bounds(i);
            // Position of the ranked sample among this bucket's c samples,
            // spread evenly across the bucket's value range.
            let pos = rank - seen - 1;
            let frac = if c == 1 { 0.5 } else { pos as f64 / (c - 1) as f64 };
            return lo + ((hi - lo) as f64 * frac).round() as u64;
        }
        seen += c;
    }
    bucket_bounds(HISTOGRAM_BUCKETS - 1).1
}

/// Point-in-time aggregate of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (wrapping add; overflow is implausible for ns).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `sum / count`.
    pub mean: f64,
    /// Median estimate via bucket interpolation (± a factor of 2).
    pub approx_p50: u64,
    /// 90th-percentile estimate via bucket interpolation (± a factor of 2).
    pub approx_p90: u64,
    /// 99th-percentile estimate via bucket interpolation (± a factor of 2).
    pub approx_p99: u64,
}

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: Vec::new(),
    gauges: Vec::new(),
    histograms: Vec::new(),
});

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Interns (or retrieves) the counter named `name`. Prefer the
/// [`counter!`](crate::counter) macro, which caches this lookup.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = lock_registry();
    if let Some(c) = reg.counters.iter().find(|c| c.name == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        name: name.to_string(),
        value: AtomicU64::new(0),
    }));
    reg.counters.push(c);
    c
}

/// Interns (or retrieves) the gauge named `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = lock_registry();
    if let Some(g) = reg.gauges.iter().find(|g| g.name == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge {
        name: name.to_string(),
        bits: AtomicU64::new(0),
        touched: AtomicBool::new(false),
    }));
    reg.gauges.push(g);
    g
}

/// Interns (or retrieves) the histogram named `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = lock_registry();
    if let Some(h) = reg.histograms.iter().find(|h| h.name == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        name: name.to_string(),
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        min: AtomicU64::new(u64::MAX),
        max: AtomicU64::new(0),
    }));
    reg.histograms.push(h);
    h
}

/// A point-in-time view of every *touched* metric, sorted by name.
/// Registered-but-never-recorded metrics are omitted, so a run with
/// observability disabled snapshots as empty.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every nonzero counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge that was ever set.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every histogram with samples.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// True when no metric recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders as a `{"type":"metrics", ...}` JSONL record.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(n, s)| {
                    (
                        n.clone(),
                        Json::obj([
                            ("count", Json::Num(s.count as f64)),
                            ("sum", Json::Num(s.sum as f64)),
                            ("min", Json::Num(s.min as f64)),
                            ("max", Json::Num(s.max as f64)),
                            ("mean", Json::Num(s.mean)),
                            ("approx_p50", Json::Num(s.approx_p50 as f64)),
                            ("approx_p90", Json::Num(s.approx_p90 as f64)),
                            ("approx_p99", Json::Num(s.approx_p99 as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("type".to_string(), Json::str("metrics")),
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ])
    }
}

/// Captures the current state of every touched metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock_registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .iter()
        .filter(|c| c.get() != 0)
        .map(|c| (c.name.clone(), c.get()))
        .collect();
    let mut gauges: Vec<(String, f64)> = reg
        .gauges
        .iter()
        .filter(|g| g.touched.load(Relaxed))
        .map(|g| (g.name.clone(), g.get()))
        .collect();
    let mut histograms: Vec<(String, HistogramSummary)> = reg
        .histograms
        .iter()
        .filter_map(|h| h.summary().map(|s| (h.name.clone(), s)))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zeroes every registered metric. Intended for tests and the CI overhead
/// gate; production code should snapshot instead.
pub fn reset() {
    let reg = lock_registry();
    for c in &reg.counters {
        c.reset();
    }
    for g in &reg.gauges {
        g.reset();
    }
    for h in &reg.histograms {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_metrics_enabled, test_lock};

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(10), (512, 1023));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 4, 5, 255, 256, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "v={v} lo={lo} hi={hi}");
        }
        // Buckets tile without gaps or overlaps.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_bounds(i).0, bucket_bounds(i - 1).1 + 1);
        }
    }

    #[test]
    fn histogram_records_across_boundaries() {
        let _guard = test_lock();
        set_metrics_enabled(true);
        let h = histogram("test.metrics.hist_boundaries");
        h.reset();
        for v in [0u64, 1, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1, "zero bucket");
        assert_eq!(buckets[1], 2, "value 1 twice");
        assert_eq!(buckets[2], 2, "values 2 and 3");
        assert_eq!(buckets[3], 1, "value 4");
        assert_eq!(buckets[11], 1, "value 1024");
        let s = h.summary().expect("has samples");
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1035);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        // 4th of 7 samples is the first of bucket 2's two samples → its
        // interpolated position is the bucket's lower bound, 2.
        assert_eq!(s.approx_p50, 2);
        // 7th of 7 samples sits alone in bucket 11 → midpoint of [1024, 2047].
        assert_eq!(s.approx_p90, 1536);
        assert_eq!(s.approx_p99, 1536);
        set_metrics_enabled(false);
    }

    #[test]
    fn percentiles_track_exact_quantiles_on_synthetic_data() {
        let _guard = test_lock();
        set_metrics_enabled(true);
        let h = histogram("test.metrics.hist_percentiles");
        h.reset();
        // 1..=1000 uniformly: exact p50 = 500, p90 = 900, p99 = 990.
        let mut exact: Vec<u64> = (1..=1000u64).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        for (q, exact_v) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let approx = h.percentile(q).unwrap();
            // A log₂ histogram promises the true quantile to within its
            // bucket, i.e. a factor of two either way.
            assert!(
                approx >= exact_v / 2 && approx <= exact_v * 2,
                "q={q}: approx {approx} vs exact {exact_v}"
            );
        }
        // Degenerate inputs.
        assert_eq!(h.percentile(-0.1), None);
        assert_eq!(h.percentile(1.5), None);
        assert_eq!(h.percentile(0.0), Some(1), "rank clamps to the minimum sample's bucket");
        h.reset();
        assert_eq!(h.percentile(0.5), None, "empty histogram has no quantiles");
        // A single sample lands every quantile in its own bucket.
        h.record(700);
        let p = h.percentile(0.99).unwrap();
        assert!(p >= 512 && p <= 1023, "single sample bucket [512,1023], got {p}");
        h.reset();
        set_metrics_enabled(false);
    }

    #[test]
    fn percentile_edge_cases_empty_single_and_boundaries() {
        let _guard = test_lock();
        set_metrics_enabled(true);
        let h = histogram("test.metrics.hist_percentile_edges");

        // Empty histogram: every q (valid or not) yields None.
        h.reset();
        for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(h.percentile(q), None, "empty histogram, q={q}");
        }

        // Single sample: a lone sample interpolates to its bucket's exact
        // midpoint at every valid q — the estimator has no spread to work
        // with, so q must not change the answer.
        h.record(700); // bucket [512, 1023], midpoint 512 + round(511 * 0.5)
        let mid = 512 + ((1023u64 - 512) as f64 * 0.5).round() as u64;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(h.percentile(q), Some(mid), "single sample, q={q}");
        }
        h.reset();

        // A single zero sample: bucket 0 collapses to [0, 0], so the
        // interpolation is exact whatever q says.
        h.record(0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(q), Some(0));
        }
        h.reset();

        // Exact bucket-boundary interpolation: with every sample in one
        // bucket, the extreme quantiles land exactly on the bucket bounds
        // (frac = pos / (c − 1) hits 0 and 1), and the median sits exactly
        // on the midpoint for odd counts.
        let (lo, hi) = bucket_bounds(bucket_index(600));
        assert_eq!((lo, hi), (512, 1023));
        for v in [520, 600, 800] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(lo), "q=0 hits the lower bound exactly");
        assert_eq!(h.percentile(1.0), Some(hi), "q=1 hits the upper bound exactly");
        // rank 2 of 3 → pos 1, frac 1/2 → exact midpoint.
        assert_eq!(h.percentile(0.5), Some(lo + ((hi - lo) as f64 * 0.5).round() as u64));
        h.reset();

        // A power-of-two sample sits at the *lower* boundary of its bucket:
        // 1024 opens bucket [1024, 2047], it does not close [512, 1023].
        h.record(1024);
        let (lo2, hi2) = bucket_bounds(bucket_index(1024));
        assert_eq!(lo2, 1024);
        let p = h.percentile(0.5).unwrap();
        assert!(p >= lo2 && p <= hi2, "boundary sample left its bucket: {p}");
        h.reset();

        // Two buckets, one sample each: q low enough ranks into the first
        // bucket, q=1.0 into the second — each interpolated to its own
        // bucket midpoint, never a value between buckets.
        h.record(3); // bucket [2, 3]
        h.record(40); // bucket [32, 63]
        assert_eq!(h.percentile(0.5), Some(3), "rank 1 of 2 stays in [2,3]");
        let top = h.percentile(1.0).unwrap();
        assert!((32..=63).contains(&top), "rank 2 of 2 must sit in [32,63]: {top}");
        h.reset();
        set_metrics_enabled(false);
    }

    #[test]
    fn disabled_metrics_record_nothing_and_snapshot_empty() {
        let _guard = test_lock();
        set_metrics_enabled(false);
        reset();
        let c = counter("test.metrics.disabled_counter");
        let g = gauge("test.metrics.disabled_gauge");
        let h = histogram("test.metrics.disabled_hist");
        c.inc();
        c.add(10);
        g.set(3.5);
        h.record(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(h.summary().is_none());
        assert!(snapshot().is_empty(), "disabled run must snapshot empty");
    }

    #[test]
    fn snapshot_reports_touched_metrics_sorted() {
        let _guard = test_lock();
        set_metrics_enabled(true);
        reset();
        counter("test.metrics.z_counter").add(3);
        counter("test.metrics.a_counter").add(1);
        gauge("test.metrics.gauge").set(-2.5);
        histogram("test.metrics.hist").record(100);
        let snap = snapshot();
        assert_eq!(snap.counter("test.metrics.a_counter"), Some(1));
        assert_eq!(snap.counter("test.metrics.z_counter"), Some(3));
        assert_eq!(snap.gauge("test.metrics.gauge"), Some(-2.5));
        assert_eq!(snap.histogram("test.metrics.hist").unwrap().count, 1);
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counters sorted by name");
        // A gauge explicitly set to zero still shows up (touched flag).
        gauge("test.metrics.zero_gauge").set(0.0);
        assert_eq!(snapshot().gauge("test.metrics.zero_gauge"), Some(0.0));
        reset();
        assert!(snapshot().is_empty());
        set_metrics_enabled(false);
    }

    #[test]
    fn interning_returns_the_same_instance() {
        let _guard = test_lock();
        let a = counter("test.metrics.interned") as *const Counter;
        let b = counter("test.metrics.interned") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_to_json_parses_back() {
        let _guard = test_lock();
        set_metrics_enabled(true);
        reset();
        counter("test.metrics.json_counter").add(7);
        histogram("test.metrics.json_hist").record(1000);
        let json = snapshot().to_json();
        let parsed = Json::parse(&json.to_string()).expect("valid JSON");
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("metrics"));
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("test.metrics.json_counter")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        assert_eq!(
            parsed
                .get("histograms")
                .unwrap()
                .get("test.metrics.json_hist")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        reset();
        set_metrics_enabled(false);
    }
}
