//! Bounded gradient-dynamics recorder: a fixed-capacity, fixed-column
//! time series with deterministic decimation.
//!
//! Training loops push one row per iteration (loss, gradient norm, BP
//! score, per-layer gradient variances…); when the buffer fills it drops
//! every other retained row and doubles its sampling stride, so memory
//! stays bounded at `capacity` rows while the retained rows remain an
//! evenly spaced subsample of the full run — a 10⁶-iteration run and a
//! 10²-iteration run produce equally plottable curves. The recorder is
//! plain owned data (no global registry, no locks): the disabled path in
//! a hot loop is simply "no [`TimeSeries`] exists", which costs nothing
//! and allocates nothing.
//!
//! Serialization is JSON Lines through the in-repo [`Json`] writer: one
//! `{"type":"series_header",...}` record followed by one
//! `{"type":"sample","x":..,"v":[..]}` record per retained row. Missing
//! values are `f64::NAN` in memory and `null` on disk, in both
//! directions.

use std::io::{self, Write};
use std::path::Path;

use crate::json::Json;

/// A bounded multi-column time series (see module docs).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    columns: Vec<String>,
    /// The x value (iteration index, qubit count, …) of each retained row.
    index: Vec<f64>,
    /// Row-major values; every row has exactly `columns.len()` entries.
    rows: Vec<Vec<f64>>,
    capacity: usize,
    /// Record every `stride`-th push; doubles on each decimation.
    stride: usize,
    /// Total pushes observed, including ones skipped by the stride.
    pushed: usize,
}

/// Equality over the recorded *data* (columns, rows, push count,
/// stride), ignoring the capacity policy — so a series that round-trips
/// through JSONL (which does not persist capacity) compares equal.
impl PartialEq for TimeSeries {
    fn eq(&self, other: &TimeSeries) -> bool {
        self.columns == other.columns
            && self.index == other.index
            && self.rows == other.rows
            && self.pushed == other.pushed
            && self.stride == other.stride
    }
}

impl TimeSeries {
    /// A recorder with the given column names retaining at most
    /// `capacity` rows (clamped to at least 2 so decimation can halve).
    pub fn new<S: Into<String>>(columns: Vec<S>, capacity: usize) -> TimeSeries {
        let capacity = capacity.max(2);
        // Preallocate for the common (small) capacities only; a parsed
        // series uses an unbounded capacity and grows on demand.
        let prealloc = capacity.min(4096);
        TimeSeries {
            columns: columns.into_iter().map(Into::into).collect(),
            index: Vec::with_capacity(prealloc),
            rows: Vec::with_capacity(prealloc),
            capacity,
            stride: 1,
            pushed: 0,
        }
    }

    /// Offers one sample. Retained only when the current stride selects
    /// it; decimates (drop every other row, double the stride) when the
    /// buffer is full, so pushes are O(1) amortized and memory is O(capacity).
    ///
    /// # Panics
    /// When `values.len()` differs from the column count.
    pub fn push(&mut self, x: f64, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "TimeSeries::push: {} values for {} columns",
            values.len(),
            self.columns.len()
        );
        let selected = self.pushed % self.stride == 0;
        self.pushed += 1;
        if !selected {
            return;
        }
        if self.rows.len() == self.capacity {
            // Keep rows 0, 2, 4, … — exactly the pushes at multiples of
            // the doubled stride, so the retained set stays evenly spaced.
            let mut keep = 0usize;
            for i in (0..self.rows.len()).step_by(2) {
                self.index.swap(keep, i);
                self.rows.swap(keep, i);
                keep += 1;
            }
            self.index.truncate(keep);
            self.rows.truncate(keep);
            self.stride *= 2;
            // The push we are handling was selected under the old stride;
            // re-check under the new one (push index is self.pushed - 1).
            if (self.pushed - 1) % self.stride != 0 {
                return;
            }
        }
        self.index.push(x);
        self.rows.push(values.to_vec());
    }

    /// Column names, in storage order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of retained rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are retained.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total pushes observed (retained or not).
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Current sampling stride (1 until the first decimation).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The x values of the retained rows.
    pub fn index(&self) -> &[f64] {
        &self.index
    }

    /// The retained rows, row-major.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The `(x, value)` pairs of one named column, skipping NaN entries.
    pub fn column(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        let c = self.columns.iter().position(|n| n == name)?;
        Some(
            self.index
                .iter()
                .zip(&self.rows)
                .filter(|(_, row)| row[c].is_finite())
                .map(|(&x, row)| (x, row[c]))
                .collect(),
        )
    }

    /// Serializes to JSONL: a header record then one record per row.
    /// NaN/inf serialize as `null` (the [`Json`] writer's behavior).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Json::Obj(vec![
            ("type".to_string(), Json::str("series_header")),
            (
                "columns".to_string(),
                Json::Arr(self.columns.iter().map(Json::str).collect()),
            ),
            ("pushed".to_string(), Json::from(self.pushed)),
            ("stride".to_string(), Json::from(self.stride)),
        ]);
        out.push_str(&header.to_string());
        out.push('\n');
        for (x, row) in self.index.iter().zip(&self.rows) {
            let rec = Json::Obj(vec![
                ("type".to_string(), Json::str("sample")),
                ("x".to_string(), Json::Num(*x)),
                (
                    "v".to_string(),
                    Json::Arr(row.iter().map(|&v| Json::Num(v)).collect()),
                ),
            ]);
            out.push_str(&rec.to_string());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL serialization to `path` (truncating).
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()
    }

    /// Parses a series back from its JSONL text. `null` values become
    /// NaN. Unknown record types are skipped so the format can grow.
    pub fn parse_jsonl(text: &str) -> Result<TimeSeries, String> {
        let mut series: Option<TimeSeries> = None;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = Json::parse(line)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            match rec.get("type").and_then(Json::as_str) {
                Some("series_header") => {
                    let columns: Vec<String> = rec
                        .get("columns")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("line {}: header without columns", lineno + 1))?
                        .iter()
                        .filter_map(|c| c.as_str().map(String::from))
                        .collect();
                    let mut s = TimeSeries::new(columns, usize::MAX);
                    s.pushed = rec.get("pushed").and_then(Json::as_f64).unwrap_or(0.0) as usize;
                    s.stride = (rec.get("stride").and_then(Json::as_f64).unwrap_or(1.0) as usize).max(1);
                    series = Some(s);
                }
                Some("sample") => {
                    let s = series
                        .as_mut()
                        .ok_or_else(|| format!("line {}: sample before header", lineno + 1))?;
                    let x = rec
                        .get("x")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("line {}: sample without x", lineno + 1))?;
                    let v = rec
                        .get("v")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("line {}: sample without v", lineno + 1))?;
                    if v.len() != s.columns.len() {
                        return Err(format!(
                            "line {}: {} values for {} columns",
                            lineno + 1,
                            v.len(),
                            s.columns.len()
                        ));
                    }
                    let row: Vec<f64> =
                        v.iter().map(|j| j.as_f64().unwrap_or(f64::NAN)).collect();
                    s.index.push(x);
                    s.rows.push(row);
                }
                _ => {}
            }
        }
        series.ok_or_else(|| "no series_header record".to_string())
    }

    /// Reads and parses a series file written by [`write_jsonl`](Self::write_jsonl).
    pub fn read_jsonl(path: &Path) -> Result<TimeSeries, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        TimeSeries::parse_jsonl(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_1col(capacity: usize) -> TimeSeries {
        TimeSeries::new(vec!["loss"], capacity)
    }

    #[test]
    fn retains_everything_below_capacity() {
        let mut s = TimeSeries::new(vec!["loss", "grad_norm"], 16);
        for i in 0..10 {
            s.push(i as f64, &[i as f64, 2.0 * i as f64]);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.index()[9], 9.0);
        assert_eq!(s.rows()[3], vec![3.0, 6.0]);
        assert_eq!(s.column("grad_norm").unwrap()[4], (4.0, 8.0));
        assert!(s.column("missing").is_none());
    }

    #[test]
    fn decimation_keeps_evenly_spaced_subsample_and_bounds_memory() {
        let mut s = series_1col(8);
        for i in 0..1000 {
            s.push(i as f64, &[i as f64]);
        }
        assert!(s.len() <= 8, "len {} exceeds capacity", s.len());
        assert!(s.len() >= 4, "decimation dropped too much: {}", s.len());
        assert_eq!(s.pushed(), 1000);
        // Retained x values are exactly the multiples of the final stride.
        let stride = s.stride() as f64;
        for (k, &x) in s.index().iter().enumerate() {
            assert_eq!(x, k as f64 * stride, "row {k} not evenly spaced");
        }
        // The same pushes through a bigger buffer agree on shared rows.
        let mut big = series_1col(4096);
        for i in 0..1000 {
            big.push(i as f64, &[i as f64]);
        }
        for (&x, row) in s.index().iter().zip(s.rows()) {
            let pos = big.index().iter().position(|&bx| bx == x).unwrap();
            assert_eq!(&big.rows()[pos], row);
        }
    }

    #[test]
    fn decimation_is_deterministic() {
        let run = || {
            let mut s = series_1col(16);
            for i in 0..333 {
                s.push(i as f64, &[(i * 7 % 13) as f64]);
            }
            s
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn capacity_one_is_clamped_to_two_and_still_decimates() {
        let mut s = series_1col(1);
        for i in 0..100 {
            s.push(i as f64, &[i as f64]);
        }
        assert!(s.len() <= 2, "clamped capacity must bound retention: {}", s.len());
        assert!(!s.is_empty());
        assert_eq!(s.pushed(), 100);
        // Row 0 is always push 0 — decimation keeps even-indexed rows.
        assert_eq!(s.index()[0], 0.0);
        let stride = s.stride() as f64;
        for (k, &x) in s.index().iter().enumerate() {
            assert_eq!(x, k as f64 * stride);
        }
    }

    #[test]
    fn pushing_exactly_capacity_rows_never_decimates() {
        let mut s = series_1col(8);
        for i in 0..8 {
            s.push(i as f64, &[i as f64]);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.stride(), 1, "a full-but-not-overfull buffer keeps every row");
        // The very next push triggers exactly one decimation.
        s.push(8.0, &[8.0]);
        assert_eq!(s.stride(), 2);
        assert_eq!(s.len(), 5, "4 survivors + the newly selected push 8");
        assert_eq!(s.index(), &[0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn nan_only_column_extracts_as_empty_not_missing() {
        let mut s = TimeSeries::new(vec!["loss", "bp_score"], 8);
        for i in 0..4 {
            s.push(i as f64, &[i as f64, f64::NAN]);
        }
        // The column exists, every row is NaN: Some(empty), not None.
        assert_eq!(s.column("bp_score"), Some(vec![]));
        assert_eq!(s.column("loss").unwrap().len(), 4);
        assert!(s.column("absent").is_none());
    }

    #[test]
    fn jsonl_round_trip_preserves_rows_and_nan() {
        let mut s = TimeSeries::new(vec!["loss", "bp_score"], 32);
        s.push(0.0, &[1.0, f64::NAN]);
        s.push(1.0, &[0.5, -0.25]);
        let text = s.to_jsonl();
        assert!(text.contains("series_header"));
        assert!(text.contains("null"), "NaN must serialize as null: {text}");
        let back = TimeSeries::parse_jsonl(&text).unwrap();
        assert_eq!(back.columns(), s.columns());
        assert_eq!(back.len(), 2);
        assert_eq!(back.index(), s.index());
        assert_eq!(back.rows()[1], s.rows()[1]);
        assert!(back.rows()[0][1].is_nan(), "null must parse back to NaN");
        assert_eq!(back.pushed(), 2);
        // NaN rows are skipped by column() but the finite entry survives.
        assert_eq!(back.column("bp_score").unwrap(), vec![(1.0, -0.25)]);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TimeSeries::parse_jsonl("").is_err());
        assert!(TimeSeries::parse_jsonl("{\"type\":\"sample\",\"x\":0,\"v\":[]}").is_err());
        let bad_width = "{\"type\":\"series_header\",\"columns\":[\"a\"]}\n{\"type\":\"sample\",\"x\":0,\"v\":[1,2]}";
        assert!(TimeSeries::parse_jsonl(bad_width).is_err());
        assert!(TimeSeries::parse_jsonl("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn push_panics_on_column_mismatch() {
        let mut s = TimeSeries::new(vec!["a", "b"], 8);
        s.push(0.0, &[1.0]);
    }

    #[test]
    fn file_round_trip() {
        let mut s = series_1col(8);
        for i in 0..5 {
            s.push(i as f64, &[1.0 / (1.0 + i as f64)]);
        }
        let path = std::env::temp_dir()
            .join(format!("plateau_obs_series_{}.jsonl", std::process::id()));
        s.write_jsonl(&path).unwrap();
        let back = TimeSeries::read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, s);
    }
}
