//! Allocation profiler: a counting wrapper around the system allocator
//! plus the span-attribution hooks the tracer uses to tag each span with
//! the memory it allocated.
//!
//! The wrapper is opt-in twice over. A binary installs it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: plateau_obs::alloc::CountingAllocator =
//!     plateau_obs::alloc::CountingAllocator;
//! ```
//!
//! and the counters only tick once profiling is switched on — via
//! [`set_profiling`] or the `PLATEAU_ALLOC_PROFILE` environment variable
//! (read lazily on the first [`profiling_active`] call, *outside* the
//! allocator: reading the environment allocates, so the allocator itself
//! never touches it). With profiling off the hot path is a single relaxed
//! atomic load followed by the system allocator — no counting, no TLS
//! access, no allocation of its own.
//!
//! Tracked state, all relaxed atomics:
//!
//! - cumulative allocation **count** and **bytes** (process-wide),
//! - **live** bytes (signed, so blocks allocated before profiling was
//!   enabled can be freed without wrapping the counter),
//! - the **peak** of live bytes — the high-water mark footprint,
//! - per-thread cumulative bytes/count (const-initialized thread-locals
//!   with no destructor, so they are safe to touch from inside the
//!   allocator).
//!
//! Span attribution ([`span_start`]/[`SpanAllocStart::finish`]) charges a
//! span with the allocations made *on its own thread* between entry and
//! drop — the natural analogue of the span's wall time — plus a
//! `peak_bytes` delta: how far the process-wide high-water mark rose above
//! the live footprint at span entry. Enabling profiling probes whether a
//! counting allocator is actually installed (a throwaway boxed allocation
//! must move the counter); without one, attribution stays off so span
//! records never carry misleading zeros.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering::Relaxed};

/// Wraps [`System`] with allocation counters. Install with
/// `#[global_allocator]`; see the module docs.
pub struct CountingAllocator;

/// Read on every allocator call; nothing else happens while it is false.
static COUNTING: AtomicBool = AtomicBool::new(false);

/// Cumulative number of allocations (alloc + realloc) since process start.
static COUNT: AtomicU64 = AtomicU64::new(0);
/// Cumulative bytes requested by those allocations.
static BYTES: AtomicU64 = AtomicU64::new(0);
/// Live bytes: allocated minus freed. Signed — frees of blocks allocated
/// while counting was off would otherwise wrap.
static LIVE: AtomicI64 = AtomicI64::new(0);
/// High-water mark of `LIVE`.
static PEAK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    static THREAD_COUNT: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn on_alloc(size: usize) {
    let size = size as u64;
    COUNT.fetch_add(1, Relaxed);
    BYTES.fetch_add(size, Relaxed);
    let live = LIVE.fetch_add(size as i64, Relaxed) + size as i64;
    if live > 0 {
        PEAK.fetch_max(live as u64, Relaxed);
    }
    THREAD_BYTES.with(|c| c.set(c.get() + size));
    THREAD_COUNT.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Relaxed) {
            on_alloc(layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Relaxed) {
            on_alloc(layout.size());
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if COUNTING.load(Relaxed) {
            LIVE.fetch_sub(layout.size() as i64, Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Relaxed) {
            on_alloc(new_size);
            LIVE.fetch_sub(layout.size() as i64, Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

const UNINIT: u8 = 0xFF;

/// Span-attribution switch: 0 off, 1 on, [`UNINIT`] until the environment
/// has been consulted. Stays 0 unless a counting allocator is installed.
static ACTIVE: AtomicU8 = AtomicU8::new(UNINIT);

/// Proves a counting allocator is routing this process's allocations: a
/// throwaway heap allocation must move the counter.
fn probe_installed() -> bool {
    let before = COUNT.load(Relaxed);
    let v: Vec<u8> = Vec::with_capacity(1);
    std::hint::black_box(&v);
    drop(v);
    COUNT.load(Relaxed) != before
}

/// Switches allocation profiling on or off programmatically (overrides
/// `PLATEAU_ALLOC_PROFILE`). Returns whether profiling is actually active
/// afterwards: enabling only sticks when a [`CountingAllocator`] is
/// installed as the global allocator.
pub fn set_profiling(on: bool) -> bool {
    if !on {
        COUNTING.store(false, Relaxed);
        ACTIVE.store(0, Relaxed);
        return false;
    }
    COUNTING.store(true, Relaxed);
    let installed = probe_installed();
    if !installed {
        COUNTING.store(false, Relaxed);
    }
    ACTIVE.store(installed as u8, Relaxed);
    installed
}

#[cold]
fn init_from_env() -> bool {
    let on = matches!(
        std::env::var("PLATEAU_ALLOC_PROFILE").ok().as_deref(),
        Some("1" | "true" | "on" | "yes")
    );
    set_profiling(on)
}

/// Whether span attribution is live: profiling enabled *and* a counting
/// allocator installed. One relaxed load after first use.
#[inline]
pub fn profiling_active() -> bool {
    match ACTIVE.load(Relaxed) {
        0 => false,
        UNINIT => init_from_env(),
        _ => true,
    }
}

/// A point-in-time view of the profiler's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Cumulative allocations since counting started.
    pub count: u64,
    /// Cumulative bytes requested.
    pub bytes: u64,
    /// Live bytes (clamped at 0 when frees of pre-profiling blocks
    /// dominate).
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

/// Snapshots the process-wide counters.
pub fn stats() -> AllocStats {
    AllocStats {
        count: COUNT.load(Relaxed),
        bytes: BYTES.load(Relaxed),
        live_bytes: LIVE.load(Relaxed).max(0) as u64,
        peak_bytes: PEAK.load(Relaxed),
    }
}

/// Cumulative allocation count — the parity probe the overhead gates use.
pub fn allocation_count() -> u64 {
    COUNT.load(Relaxed)
}

/// Cumulative (bytes, count) allocated by the calling thread.
pub fn thread_allocated() -> (u64, u64) {
    (THREAD_BYTES.with(Cell::get), THREAD_COUNT.with(Cell::get))
}

/// Resets the high-water mark to the current live footprint, so a bench
/// can measure its own peak rather than the process's.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Relaxed).max(0) as u64, Relaxed);
}

/// Entry-side snapshot for span attribution. Plain `Copy` data — taking
/// one performs no allocation.
#[derive(Debug, Clone, Copy)]
pub struct SpanAllocStart {
    thread_bytes: u64,
    thread_count: u64,
    live: i64,
    peak: u64,
}

/// What a span allocated between entry and drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanAllocDelta {
    /// Bytes allocated on the span's thread.
    pub bytes: u64,
    /// Allocations on the span's thread.
    pub count: u64,
    /// How far the process-wide high-water mark rose above the live
    /// footprint at span entry (0 when the peak predates the span).
    pub peak_bytes: u64,
}

/// Takes an attribution snapshot, or `None` when profiling is inactive.
#[inline]
pub fn span_start() -> Option<SpanAllocStart> {
    if !profiling_active() {
        return None;
    }
    Some(SpanAllocStart {
        thread_bytes: THREAD_BYTES.with(Cell::get),
        thread_count: THREAD_COUNT.with(Cell::get),
        live: LIVE.load(Relaxed),
        peak: PEAK.load(Relaxed),
    })
}

impl SpanAllocStart {
    /// Closes the window and returns the span's allocation deltas.
    pub fn finish(self) -> SpanAllocDelta {
        let peak_now = PEAK.load(Relaxed);
        SpanAllocDelta {
            bytes: THREAD_BYTES.with(Cell::get).saturating_sub(self.thread_bytes),
            count: THREAD_COUNT.with(Cell::get).saturating_sub(self.thread_count),
            peak_bytes: if peak_now > self.peak {
                peak_now.saturating_sub(self.live.max(0) as u64)
            } else {
                0
            },
        }
    }
}

/// Formats a byte count for tables and tooltips (`B`, `KiB`, `MiB`, …).
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run without a counting allocator installed (the obs test
    // binary uses the system allocator), so they pin the *uninstalled*
    // behavior: enabling must fail honestly and attribution must stay off.
    // The installed path is covered end-to-end by the cli crate's
    // `alloc_profile` integration test and the telemetry overhead gate.

    #[test]
    fn enabling_without_installed_allocator_reports_inactive() {
        let _guard = crate::test_lock();
        assert!(!set_profiling(true), "no counting allocator in this binary");
        assert!(!profiling_active());
        assert!(span_start().is_none(), "attribution must stay off");
        set_profiling(false);
    }

    #[test]
    fn stats_are_zero_when_never_counted() {
        let _guard = crate::test_lock();
        set_profiling(false);
        let s = stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.peak_bytes, 0);
    }

    #[test]
    fn span_delta_math_is_saturating() {
        let start = SpanAllocStart {
            thread_bytes: 100,
            thread_count: 10,
            live: 50,
            peak: 200,
        };
        // Peak unchanged since entry → no peak delta, thread counters
        // unchanged → zero deltas.
        let d = start.finish();
        assert_eq!(d.bytes, 0);
        assert_eq!(d.count, 0);
        assert_eq!(d.peak_bytes, 0);
    }

    #[test]
    fn byte_formatting_picks_binary_units() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(16_384), "16.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
    }
}
